package sim

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestSingleProcRunsToCompletion(t *testing.T) {
	e := New(1)
	ran := false
	err := e.Run(func(p *Proc) {
		p.Advance(100)
		ran = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
	if e.Procs()[0].Clock() != 100 {
		t.Errorf("clock = %d, want 100", e.Procs()[0].Clock())
	}
}

func TestInteractOrdersByTimestamp(t *testing.T) {
	e := New(3)
	var order []int
	err := e.Run(func(p *Proc) {
		// proc 0 interacts at t=30, proc 1 at t=10, proc 2 at t=20
		p.Advance(Time(30 - 10*p.ID))
		p.Interact()
		order = append(order, p.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(1)
	var got []Time
	err := e.Run(func(p *Proc) {
		e.Schedule(50, func() { got = append(got, 50) })
		e.Schedule(10, func() { got = append(got, 10) })
		e.Schedule(30, func() { got = append(got, 30) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 30 || got[2] != 50 {
		t.Fatalf("event order = %v", got)
	}
}

func TestEventTiesAreFIFO(t *testing.T) {
	e := New(1)
	var got []int
	err := e.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			i := i
			e.Schedule(7, func() { got = append(got, i) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestBlockAndWake(t *testing.T) {
	e := New(2)
	err := e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Block()
			if p.Clock() != 500 {
				t.Errorf("woken clock = %d, want 500", p.Clock())
			}
		} else {
			p.Advance(100)
			p.Interact()
			waker := e.Procs()[0]
			e.Schedule(500, func() { waker.Wake(500) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New(1)
	err := e.Run(func(p *Proc) { p.Block() })
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e := New(2)
	_ = e.Run(func(p *Proc) {
		if p.ID == 1 {
			panic("boom")
		}
		p.Advance(10)
	})
	t.Fatal("expected panic")
}

func TestWakeNeverMovesClockBackward(t *testing.T) {
	e := New(2)
	err := e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Advance(1000)
			p.Interact()
			p.Block() // blocks at t=1000
			if p.Clock() < 1000 {
				t.Errorf("clock moved backward: %d", p.Clock())
			}
		} else {
			p.Advance(1)
			p.Interact()
			target := e.Procs()[0]
			// Wake scheduled long after proc 0 blocks.
			e.Schedule(2000, func() { target.Wake(5) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := e.Procs()[0].Clock(); c < 2000 {
		t.Errorf("woken clock %d should be >= event time 2000", c)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		e := New(4)
		var order []int
		_ = e.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Advance(Time(1 + (p.ID*7+i*3)%5))
				p.Interact()
				order = append(order, p.ID)
			}
		})
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestOnlyOneProcRunsAtATime(t *testing.T) {
	e := New(8)
	var running int32
	err := e.Run(func(p *Proc) {
		for i := 0; i < 50; i++ {
			if atomic.AddInt32(&running, 1) != 1 {
				t.Error("two processors running concurrently")
			}
			p.Advance(1)
			atomic.AddInt32(&running, -1)
			p.Interact()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScheduleInPastRunsNow(t *testing.T) {
	e := New(1)
	var at Time = -1
	err := e.Run(func(p *Proc) {
		p.Advance(100)
		p.Interact()
		e.Schedule(10, func() { at = e.Now() }) // in the past relative to t=100
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Errorf("past event ran at %d, want 100", at)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := New(1)
	_ = e.Run(func(p *Proc) { p.Advance(-1) })
}

// TestScheduleDispatchNoAlloc proves the event free-list: once warm, a
// schedule/dispatch cycle allocates no event structs.
func TestScheduleDispatchNoAlloc(t *testing.T) {
	e := New(0)
	fn := func() {}
	// Warm the free list with as many events as one round keeps in flight.
	for i := 0; i < 100; i++ {
		e.Schedule(e.Now(), fn)
	}
	if err := e.loop(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 100; i++ {
			e.Schedule(e.Now(), fn)
		}
		if err := e.loop(); err != nil {
			t.Error(err)
		}
	})
	if avg > 0 {
		t.Fatalf("schedule/dispatch allocates %.1f objects per 100 events, want 0", avg)
	}
}

// TestEventPoolClearsClosure checks that recycling an event drops its
// callback, so pooled events cannot pin captured state.
func TestEventPoolClearsClosure(t *testing.T) {
	e := New(0)
	big := make([]byte, 1)
	e.Schedule(0, func() { big[0]++ })
	if err := e.loop(); err != nil {
		t.Fatal(err)
	}
	if len(e.free) == 0 {
		t.Fatal("dispatched event not recycled")
	}
	for _, ev := range e.free {
		if ev.fn != nil {
			t.Fatal("recycled event still holds its closure")
		}
	}
}

// TestReadyHeapMatchesLinearScan cross-checks heap dispatch against the
// reference policy it replaced: smallest clock first, ties to the lowest
// processor ID.
func TestReadyHeapMatchesLinearScan(t *testing.T) {
	const (
		nProc = 5
		iters = 20
	)
	adv := func(id, i int) Time { return Time(1 + (id*3+i*5)%4) } // frequent ties
	e := New(nProc)
	var order []int
	err := e.Run(func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.Advance(adv(p.ID, i))
			p.Interact()
			order = append(order, p.ID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: a linear scan over processor clocks, strict < so the
	// lowest ID wins ties.
	clocks := make([]Time, nProc)
	done := make([]int, nProc)
	for i := range clocks {
		clocks[i] = adv(i, 0)
	}
	var want []int
	for len(want) < nProc*iters {
		best := -1
		for i := 0; i < nProc; i++ {
			if done[i] < iters && (best == -1 || clocks[i] < clocks[best]) {
				best = i
			}
		}
		want = append(want, best)
		done[best]++
		if done[best] < iters {
			clocks[best] += adv(best, done[best])
		}
	}
	if len(order) != len(want) {
		t.Fatalf("got %d dispatches, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch %d: got proc %d, want proc %d", i, order[i], want[i])
		}
	}
}

func TestCascadedEvents(t *testing.T) {
	e := New(1)
	depth := 0
	err := e.Run(func(p *Proc) {
		var chain func()
		chain = func() {
			depth++
			if depth < 10 {
				e.Schedule(e.Now()+5, chain)
			}
		}
		e.Schedule(5, chain)
	})
	if err != nil {
		t.Fatal(err)
	}
	if depth != 10 {
		t.Errorf("depth = %d, want 10", depth)
	}
}
