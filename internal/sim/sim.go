// Package sim provides a deterministic execution-driven simulation engine.
//
// Simulated processors are real goroutines running real application code,
// but exactly one runs at a time: the scheduler hands the baton to the
// runnable entity with the smallest virtual timestamp, which makes the
// simulation conservative (interactions are processed in global time order)
// and bit-for-bit reproducible.
//
// Each processor owns a local cycle clock that it advances freely between
// interactions (Compute). Immediately before any interaction with the rest
// of the system — sending a message, acquiring a lock — the processor calls
// Interact, which parks it until its clock is globally minimal. Events
// (message deliveries, protocol continuations) live in a priority queue and
// run as callbacks in the scheduler goroutine.
//
// This mirrors the execution-driven methodology of the Rice Parallel
// Processing Testbed used by the paper (Covington et al.): program behaviour
// — including data-dependent control flow such as TSP's stale-bound pruning
// — emerges from actually executing the program against simulated memory.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual time in processor cycles.
type Time int64

// Infinity is a time later than any event in a simulation.
const Infinity Time = 1<<63 - 1

// event is a scheduled callback.
type event struct {
	at  Time
	seq int64 // FIFO tiebreaker
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// readyHeap orders runnable processors by local clock, ties broken by
// processor ID so dispatch order matches a lowest-ID-first linear scan.
// A processor enters the heap when it becomes ready and leaves only by
// being dispatched, so no arbitrary removal is needed.
type readyHeap []*Proc

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].ID < h[j].ID
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(*Proc)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Proc is a simulated processor.
type Proc struct {
	ID  int
	eng *Engine

	clock Time
	state procState

	resume chan struct{} // scheduler -> proc
	parked bool          // proc is waiting in Interact (already at its interaction point)
}

// Engine drives a set of simulated processors and an event queue.
type Engine struct {
	now     Time
	seq     int64
	events  eventQueue
	free    []*event // recycled event structs (one Schedule per interaction)
	procs   []*Proc
	ready   readyHeap  // runnable processors keyed by clock
	yield   chan *Proc // proc -> scheduler: "I have yielded/blocked/finished"
	failure any        // panic captured from a proc body
}

// New returns an engine with n processors.
func New(n int) *Engine {
	e := &Engine{yield: make(chan *Proc)}
	for i := 0; i < n; i++ {
		e.procs = append(e.procs, &Proc{
			ID:     i,
			eng:    e,
			resume: make(chan struct{}),
		})
	}
	return e
}

// Procs returns the engine's processors.
func (e *Engine) Procs() []*Proc { return e.procs }

// NumProcs returns the number of simulated processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Now returns the current global virtual time: the timestamp of the entity
// being executed.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at virtual time at. If at is in the past it
// runs at the current time (still in timestamp order with other events).
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := e.newEvent()
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	heap.Push(&e.events, ev)
}

// newEvent takes an event struct from the free list, or allocates one.
func (e *Engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// releaseEvent recycles a dispatched event. The callback is cleared so the
// free list does not pin the closure (and whatever it captures) until reuse.
func (e *Engine) releaseEvent(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Run executes body on every processor until all bodies return and the event
// queue drains. It returns an error on deadlock (blocked processors with no
// pending events) and re-panics any panic raised inside a processor body,
// with its original value.
func (e *Engine) Run(body func(*Proc)) error {
	for _, p := range e.procs {
		p.state = stateReady
		p.clock = 0
		heap.Push(&e.ready, p)
		go func(p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					e.failure = r
					p.state = stateDone
					e.yield <- p
					return
				}
				p.state = stateDone
				e.yield <- p
			}()
			<-p.resume // wait for first dispatch
			body(p)
		}(p)
	}
	return e.loop()
}

func (e *Engine) loop() error {
	for {
		// earliest event
		var te Time = Infinity
		if len(e.events) > 0 {
			te = e.events[0].at
		}
		// earliest ready processor
		var tp Time = Infinity
		if len(e.ready) > 0 {
			tp = e.ready[0].clock
		}
		switch {
		case te == Infinity && tp == Infinity:
			for _, p := range e.procs {
				if p.state == stateBlocked {
					return fmt.Errorf("sim: deadlock — processor %d blocked with no pending events at t=%d", p.ID, e.now)
				}
			}
			return nil
		case te <= tp:
			ev := heap.Pop(&e.events).(*event)
			e.now = ev.at
			fn := ev.fn
			e.releaseEvent(ev) // before fn: the callback may Schedule and reuse it
			fn()
		default:
			next := heap.Pop(&e.ready).(*Proc)
			e.now = tp
			next.state = stateRunning
			next.resume <- struct{}{}
			p := <-e.yield
			if p.state == stateReady {
				heap.Push(&e.ready, p)
			}
			if p.state == stateDone && e.failure != nil {
				panic(e.failure)
			}
		}
	}
}

// Clock returns the processor's local cycle clock.
func (p *Proc) Clock() Time { return p.clock }

// Advance moves the processor's local clock forward by cycles. It models
// local computation and does not yield to the scheduler: between
// interactions a processor's execution is independent of every other.
func (p *Proc) Advance(cycles Time) {
	if cycles < 0 {
		panic("sim: negative Advance")
	}
	p.clock += cycles
}

// Interact parks the processor until its local clock is globally minimal,
// so that the interaction it is about to perform is processed in global
// timestamp order. Returns with the processor running.
func (p *Proc) Interact() {
	p.state = stateReady
	p.eng.yield <- p
	<-p.resume
	p.state = stateRunning
}

// Block parks the processor indefinitely; some event must call Wake. On
// return the local clock has been advanced to the wake time.
func (p *Proc) Block() {
	p.state = stateBlocked
	p.eng.yield <- p
	<-p.resume
	p.state = stateRunning
}

// Wake makes a blocked processor runnable again at virtual time at (or its
// current clock, whichever is later). It must be called from an event
// callback or from another processor's interaction code; either way exactly
// one entity is executing, so pushing onto the ready heap is safe.
func (p *Proc) Wake(at Time) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: Wake of processor %d in state %d", p.ID, p.state))
	}
	if at > p.clock {
		p.clock = at
	}
	if p.eng.now > p.clock {
		p.clock = p.eng.now
	}
	p.state = stateReady
	heap.Push(&p.eng.ready, p)
}
