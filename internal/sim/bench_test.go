package sim

import (
	"fmt"
	"testing"
)

// BenchmarkInteract measures the coroutine handoff cost per interaction —
// the simulator's fundamental overhead unit — across processor counts.
// Before the ready heap, picking the next processor cost O(P) per handoff.
func BenchmarkInteract(b *testing.B) {
	for _, procs := range []int{2, 16, 64} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			e := New(procs)
			n := b.N
			b.ReportAllocs()
			b.ResetTimer()
			err := e.Run(func(p *Proc) {
				for i := 0; i < n; i++ {
					p.Advance(Time(1 + p.ID%3))
					p.Interact()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkScheduleDispatch measures steady-state event throughput — the
// protocol's shape: a handful of events in flight per interaction, each
// dispatched before the next is scheduled. With the event free-list this
// allocates nothing per cycle.
func BenchmarkScheduleDispatch(b *testing.B) {
	e := New(1)
	n := b.N
	b.ReportAllocs()
	b.ResetTimer()
	err := e.Run(func(p *Proc) {
		for i := 0; i < n; i++ {
			e.Schedule(p.Clock(), func() {})
			p.Advance(1)
			p.Interact()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleBurst measures heap throughput when many events are
// enqueued before any dispatches (barrier fan-out).
func BenchmarkScheduleBurst(b *testing.B) {
	e := New(1)
	n := b.N
	b.ReportAllocs()
	b.ResetTimer()
	err := e.Run(func(p *Proc) {
		for i := 0; i < n; i++ {
			e.Schedule(Time(i), func() {})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
