package sim

import "testing"

// BenchmarkInteract measures the coroutine handoff cost per interaction —
// the simulator's fundamental overhead unit.
func BenchmarkInteract(b *testing.B) {
	e := New(2)
	n := b.N
	b.ResetTimer()
	err := e.Run(func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Advance(1)
			p.Interact()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleDispatch measures event queue throughput.
func BenchmarkScheduleDispatch(b *testing.B) {
	e := New(1)
	n := b.N
	b.ResetTimer()
	err := e.Run(func(p *Proc) {
		for i := 0; i < n; i++ {
			e.Schedule(Time(i), func() {})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
