package check_test

import (
	"fmt"
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
)

// TestCheckedRunAllAppsAllProtocols runs every workload under every
// protocol with the runtime invariant checker enabled and demands zero
// violations: vector clocks monotone, write notices covering every twin,
// diffs applied in happened-before order, barrier episodes consistent,
// and final memory equal to the 1-processor reference over each app's
// declared result regions.
func TestCheckedRunAllAppsAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("checked protocol sweep is not short")
	}
	for _, app := range harness.AppNames {
		for _, prot := range core.Protocols {
			app, prot := app, prot
			t.Run(fmt.Sprintf("%s/%v", app, prot), func(t *testing.T) {
				t.Parallel()
				spec := harness.DefaultSpec(app, harness.ScaleTest)
				spec.Protocol = prot
				spec.Procs = 4
				_, violations, err := harness.CheckedRun(spec)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range violations {
					t.Errorf("%s", v.String())
				}
			})
		}
	}
}

// TestCheckedRunViaSpec exercises the Spec.Check entry point used by the
// command-line tools.
func TestCheckedRunViaSpec(t *testing.T) {
	spec := harness.DefaultSpec("jacobi", harness.ScaleTest)
	spec.Procs = 2
	spec.Check = true
	if _, err := harness.Run(spec); err != nil {
		t.Fatal(err)
	}
}
