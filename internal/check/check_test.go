package check

// Deliberately broken event sequences proving each invariant fires, plus
// well-formed sequences proving the checker stays quiet on legal runs.

import (
	"strings"
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

func mkVC(vals ...int32) vc.VC {
	v := vc.New(len(vals))
	for i, x := range vals {
		v.Set(i, x)
	}
	return v
}

// kinds extracts the violation kinds detected so far.
func kinds(c *Checker) []string {
	var out []string
	for _, v := range c.Violations() {
		out = append(out, v.Kind)
	}
	return out
}

func wantKind(t *testing.T, c *Checker, kind string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Kind == kind {
			if v.String() == "" {
				t.Fatalf("violation of kind %q has empty rendering", kind)
			}
			return
		}
	}
	t.Fatalf("no %q violation fired; got %v", kind, kinds(c))
}

func wantClean(t *testing.T, c *Checker) {
	t.Helper()
	if n := c.Count(); n != 0 {
		t.Fatalf("expected clean run, got %d violations: %v", n, c.Violations())
	}
}

func TestClockRegressionFires(t *testing.T) {
	c := New(2)
	c.ClockAdvanced(0, mkVC(3, 2))
	c.ClockAdvanced(0, mkVC(3, 1)) // slot 1 regressed
	wantKind(t, c, "clock")
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("Err() = %v, want a clock-regression summary", err)
	}
}

func TestClockMonotoneStaysQuiet(t *testing.T) {
	c := New(2)
	c.ClockAdvanced(0, mkVC(1, 0))
	c.ClockAdvanced(0, mkVC(1, 4))
	c.ClockAdvanced(0, mkVC(2, 4))
	wantClean(t, c)
}

func TestIntervalIndexGapFires(t *testing.T) {
	c := New(2)
	c.TwinCreated(0, 7)
	c.IntervalClosed(0, 1, mkVC(1, 0), []page.ID{7})
	c.TwinCreated(0, 7)
	c.IntervalClosed(0, 3, mkVC(3, 0), []page.ID{7}) // skipped interval 2
	wantKind(t, c, "interval")
}

func TestIntervalOwnSlotMismatchFires(t *testing.T) {
	c := New(2)
	c.TwinCreated(0, 7)
	c.IntervalClosed(0, 1, mkVC(2, 0), []page.ID{7}) // own slot says 2, idx is 1
	wantKind(t, c, "clock")
}

func TestUncoveredTwinFires(t *testing.T) {
	c := New(2)
	c.TwinCreated(0, 7)
	c.TwinCreated(0, 8)
	// Interval closes covering only page 7: the twinned page 8 has no
	// write notice, so its modifications would be lost.
	c.IntervalClosed(0, 1, mkVC(1, 0), []page.ID{7})
	wantKind(t, c, "coverage")
}

func TestPhantomNoticeFires(t *testing.T) {
	c := New(2)
	c.TwinCreated(0, 7)
	// Write notice for page 9, which was never twinned.
	c.IntervalClosed(0, 1, mkVC(1, 0), []page.ID{7, 9})
	wantKind(t, c, "coverage")
}

func TestEagerUncoveredTwinFires(t *testing.T) {
	c := New(2)
	c.TwinCreated(1, 7)
	c.TwinCreated(1, 8)
	c.EagerFlushed(1, 1, []page.ID{7}) // page 8 dropped
	wantKind(t, c, "coverage")
}

func TestEagerEpochOrderFires(t *testing.T) {
	c := New(2)
	c.EagerFlushed(1, 2, nil)
	c.EagerFlushed(1, 1, nil) // epoch going backwards
	wantKind(t, c, "interval")
}

// TestHappenedBeforeViolationFires applies a later interval of one writer
// while its predecessor on the same page — within the applier's own
// vector time — has not been incorporated.
func TestHappenedBeforeViolationFires(t *testing.T) {
	c := New(2)
	// Writer 0 closes two intervals, both writing page 3.
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 1, mkVC(1, 0), []page.ID{3})
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 2, mkVC(2, 0), []page.ID{3})
	// Proc 1 acquires knowledge of both (vector time covers interval 2)...
	c.ClockAdvanced(1, mkVC(2, 1))
	// ...then applies (0,2) without ever applying (0,1).
	c.DiffApplied(1, 3, 0, 2, mkVC(2, 0))
	wantKind(t, c, "hb")
}

func TestHappenedBeforeInOrderStaysQuiet(t *testing.T) {
	c := New(2)
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 1, mkVC(1, 0), []page.ID{3})
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 2, mkVC(2, 0), []page.ID{3})
	c.ClockAdvanced(1, mkVC(2, 1))
	c.DiffApplied(1, 3, 0, 1, mkVC(1, 0))
	c.DiffApplied(1, 3, 0, 2, mkVC(2, 0))
	wantClean(t, c)
}

// TestEarlyUpdatePushStaysQuiet mirrors the LH/LU update push: a diff
// arrives ahead of the receiver's vector time, so missing predecessors
// the receiver has never heard of carry no obligation.
func TestEarlyUpdatePushStaysQuiet(t *testing.T) {
	c := New(2)
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 1, mkVC(1, 0), []page.ID{3})
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 2, mkVC(2, 0), []page.ID{3})
	// Proc 1's clock has never advanced past writer 0's interval 0: the
	// pushed diff of (0,2) imposes no ordering obligation.
	c.ClockAdvanced(1, mkVC(0, 1))
	c.DiffApplied(1, 3, 0, 2, mkVC(2, 0))
	wantClean(t, c)
}

// TestAdoptionSatisfiesPredecessors mirrors a page fetch: the adopted
// image's copy timestamp covers old intervals, so applying a successor
// straight after is legal.
func TestAdoptionSatisfiesPredecessors(t *testing.T) {
	c := New(2)
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 1, mkVC(1, 0), []page.ID{3})
	c.TwinCreated(0, 3)
	c.IntervalClosed(0, 2, mkVC(2, 0), []page.ID{3})
	c.ClockAdvanced(1, mkVC(2, 1))
	c.CopyAdopted(1, 3, []int32{1, 0}, mkVC(1, 0))
	c.DiffApplied(1, 3, 0, 2, mkVC(2, 0))
	wantClean(t, c)
}

func TestBarrierEpisodeOrderFires(t *testing.T) {
	c := New(2)
	c.BarrierDeparted(0, 1, mkVC(1, 1))
	c.BarrierDeparted(0, 3, mkVC(2, 2)) // skipped episode 2
	wantKind(t, c, "episode")
}

func TestBarrierEpisodeVTMismatchFires(t *testing.T) {
	c := New(2)
	c.BarrierDeparted(0, 1, mkVC(1, 1))
	c.BarrierDeparted(1, 1, mkVC(1, 2)) // different merged time, same episode
	wantKind(t, c, "episode")
}

func TestBarrierConsistentStaysQuiet(t *testing.T) {
	c := New(2)
	c.BarrierDeparted(0, 1, mkVC(1, 1))
	c.BarrierDeparted(1, 1, mkVC(1, 1))
	// Eager protocols depart with a zero vector time; that is legal.
	ce := New(2)
	ce.BarrierDeparted(0, 1, mkVC(0, 0))
	ce.BarrierDeparted(1, 1, mkVC(0, 0))
	wantClean(t, c)
	wantClean(t, ce)
}

// newMemSystem builds a minimal 1-processor system for memory-comparison
// tests.
func newMemSystem(t *testing.T) *core.System {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Procs = 1
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompareRegionsExactMismatchFires(t *testing.T) {
	got, want := newMemSystem(t), newMemSystem(t)
	a := got.AllocPage(64)
	if b := want.AllocPage(64); b != a {
		t.Fatalf("allocation addresses diverge: %v vs %v", a, b)
	}
	got.InitI64(a, 41)
	want.InitI64(a, 42)
	vs := CompareRegions(got, want, []core.ResultRegion{{Name: "r", Base: a, Words: 1}})
	if len(vs) != 1 || vs[0].Kind != "memory" {
		t.Fatalf("CompareRegions = %v, want one memory violation", vs)
	}
	if !strings.Contains(vs[0].Detail, `region "r"`) {
		t.Fatalf("violation lacks region context: %s", vs[0].Detail)
	}
}

func TestCompareRegionsFloatTolerance(t *testing.T) {
	got, want := newMemSystem(t), newMemSystem(t)
	a := got.AllocPage(64)
	want.AllocPage(64)
	// Within 1e-9 relative: no violation for a Float region, but a
	// violation for an exact region.
	got.InitF64(a, 1.0)
	want.InitF64(a, 1.0+1e-12)
	// Beyond tolerance in the second word: always a violation.
	got.InitF64(a+8, 1.0)
	want.InitF64(a+8, 1.001)
	float := []core.ResultRegion{{Name: "f", Base: a, Words: 2, Float: true}}
	if vs := CompareRegions(got, want, float); len(vs) != 1 {
		t.Fatalf("float region: %d violations (%v), want 1", len(vs), vs)
	}
	exact := []core.ResultRegion{{Name: "e", Base: a, Words: 2}}
	if vs := CompareRegions(got, want, exact); len(vs) != 2 {
		t.Fatalf("exact region: %d violations (%v), want 2", len(vs), vs)
	}
}

func TestViolationCapAndCount(t *testing.T) {
	c := New(2)
	for i := 0; i < 250; i++ {
		c.EagerFlushed(1, 1, nil) // epoch never increases: fires every time
	}
	if got := c.Count(); got != 249 {
		t.Fatalf("Count() = %d, want 249", got)
	}
	if got := len(c.Violations()); got != 100 {
		t.Fatalf("len(Violations()) = %d, want the 100-entry cap", got)
	}
}
