// Package check is the runtime invariant checker for the DSM protocols:
// a core.Observer that maintains an independent shadow of the protocol
// bookkeeping from the event stream and reports any violation of the
// release-consistency invariants the simulation's results rest on:
//
//   - vector clocks advance monotonically and interval indices are
//     contiguous per processor (IntervalClosed, ClockAdvanced);
//   - every page twinned during an interval is covered by the interval's
//     write notices — a diff can never be silently dropped (TwinCreated
//     vs IntervalClosed/EagerFlushed);
//   - diffs are applied respecting happened-before: when a processor
//     incorporates an interval, every interval that happened before it
//     and wrote the same page is already incorporated (DiffApplied,
//     seeded by CopyAdopted);
//   - barrier episodes are delivered in order with one merged vector time
//     per episode (BarrierDeparted);
//   - end-of-run memory equals a 1-processor reference run over the
//     application's declared result regions (CompareRegions).
//
// Violations carry the processor, interval, page and vector clock involved
// so a failure localizes the protocol bug rather than just flagging it.
package check

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"lrcdsm/internal/core"
	"lrcdsm/internal/page"
	"lrcdsm/internal/vc"
)

// FloatTol is the relative tolerance used when comparing float result
// regions: parallel runs may sum floating-point contributions in a
// different order than the 1-processor reference.
const FloatTol = 1e-9

// maxStored caps the retained violations; the total is always counted.
const maxStored = 100

// Violation is one detected invariant breach.
type Violation struct {
	Kind     string  // "clock" | "interval" | "coverage" | "hb" | "episode" | "memory"
	Proc     int     // processor involved, -1 if not applicable
	Interval int32   // interval index involved, -1 if not applicable
	Page     page.ID // page involved, -1 if not applicable
	VC       vc.VC   // clock involved, nil if not applicable
	Detail   string
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check[%s]", v.Kind)
	if v.Proc >= 0 {
		fmt.Fprintf(&b, " proc=%d", v.Proc)
	}
	if v.Interval >= 0 {
		fmt.Fprintf(&b, " interval=%d", v.Interval)
	}
	if v.Page >= 0 {
		fmt.Fprintf(&b, " page=%d", v.Page)
	}
	if v.VC != nil {
		fmt.Fprintf(&b, " vc=%v", []int32(v.VC))
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	return b.String()
}

// intervalInfo is the checker's record of one closed interval.
type intervalInfo struct {
	vt    vc.VC
	pages []page.ID
}

// copyState shadows one processor's copy of one page: the contiguous
// per-writer base and coverage adopted from page fetches, plus the set of
// individually incorporated intervals.
type copyState struct {
	base    []int32
	cover   vc.VC
	applied map[int64]bool
}

func ikey(proc int, idx int32) int64 { return int64(proc)<<32 | int64(uint32(idx)) }

// Checker implements core.Observer. Install via core.Config.Observer (the
// harness does this under Spec.Check); one Checker observes one System.
type Checker struct {
	mu sync.Mutex
	n  int

	total      int
	violations []Violation

	lastVT      []vc.VC
	lastIdx     []int32
	lastEpoch   []int32
	twinned     []map[page.ID]bool
	intervals   map[int64]*intervalInfo
	pageWriters map[page.ID][][]int32 // pg -> per-writer sorted interval indices
	copies      []map[page.ID]*copyState
	lastEpisode []int64
	episodeVT   map[int64]vc.VC
}

var _ core.Observer = (*Checker)(nil)

// New returns a Checker for an n-processor system.
func New(n int) *Checker {
	c := &Checker{
		n:           n,
		lastVT:      make([]vc.VC, n),
		lastIdx:     make([]int32, n),
		lastEpoch:   make([]int32, n),
		twinned:     make([]map[page.ID]bool, n),
		intervals:   make(map[int64]*intervalInfo),
		pageWriters: make(map[page.ID][][]int32),
		copies:      make([]map[page.ID]*copyState, n),
		lastEpisode: make([]int64, n),
		episodeVT:   make(map[int64]vc.VC),
	}
	for i := 0; i < n; i++ {
		c.twinned[i] = make(map[page.ID]bool)
		c.copies[i] = make(map[page.ID]*copyState)
		// Barrier episodes are numbered from 1 (the master increments
		// before the first departure).
		c.lastEpisode[i] = 0
	}
	return c
}

func (c *Checker) report(v Violation) {
	c.total++
	if len(c.violations) < maxStored {
		c.violations = append(c.violations, v)
	}
}

// Violations returns the retained violations (at most 100; Count gives the
// full total).
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Count returns the total number of violations detected.
func (c *Checker) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Err returns nil if no violations were detected, else an error
// summarizing the first few.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s):", c.total)
	for i, v := range c.violations {
		if i == 5 {
			fmt.Fprintf(&b, "\n  ... (%d more)", c.total-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v.String())
	}
	return fmt.Errorf("%s", b.String())
}

func (c *Checker) copyState(proc int, pg page.ID) *copyState {
	cs := c.copies[proc][pg]
	if cs == nil {
		cs = &copyState{applied: make(map[int64]bool)}
		c.copies[proc][pg] = cs
	}
	return cs
}

// ---- core.Observer ----

// TwinCreated records that proc's current interval modifies pg.
func (c *Checker) TwinCreated(proc int, pg page.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.twinned[proc][pg] = true
}

// IntervalClosed validates interval-index contiguity, vector-clock
// monotonicity, and write-notice coverage of every twinned page, then
// registers the interval for later happened-before checks.
func (c *Checker) IntervalClosed(proc int, idx int32, vt vc.VC, pages []page.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx != c.lastIdx[proc]+1 {
		c.report(Violation{Kind: "interval", Proc: proc, Interval: idx, Page: -1, VC: vt,
			Detail: fmt.Sprintf("interval index not contiguous: previous was %d", c.lastIdx[proc])})
	}
	c.lastIdx[proc] = idx
	if vt.Get(proc) != idx {
		c.report(Violation{Kind: "clock", Proc: proc, Interval: idx, Page: -1, VC: vt,
			Detail: fmt.Sprintf("interval timestamp's own slot is %d, want %d", vt.Get(proc), idx)})
	}
	c.checkClock(proc, idx, vt)

	covered := make(map[page.ID]bool, len(pages))
	for _, pg := range pages {
		covered[pg] = true
		if !c.twinned[proc][pg] {
			c.report(Violation{Kind: "coverage", Proc: proc, Interval: idx, Page: pg, VC: vt,
				Detail: "write notice for a page the interval never twinned"})
		}
	}
	for pg := range c.twinned[proc] {
		if !covered[pg] {
			c.report(Violation{Kind: "coverage", Proc: proc, Interval: idx, Page: pg, VC: vt,
				Detail: "twinned page not covered by any write notice of the closing interval"})
		}
	}
	c.twinned[proc] = make(map[page.ID]bool)

	c.intervals[ikey(proc, idx)] = &intervalInfo{vt: vt, pages: pages}
	for _, pg := range pages {
		ws := c.pageWriters[pg]
		if ws == nil {
			ws = make([][]int32, c.n)
			c.pageWriters[pg] = ws
		}
		ws[proc] = append(ws[proc], idx)
		// The creator's own copy incorporates its own writes.
		c.copyState(proc, pg).applied[ikey(proc, idx)] = true
	}
}

// EagerFlushed validates epoch ordering and write-notice coverage for the
// eager protocols' (clock-free) modification episodes.
func (c *Checker) EagerFlushed(proc int, epoch int32, pages []page.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch <= c.lastEpoch[proc] {
		c.report(Violation{Kind: "interval", Proc: proc, Interval: epoch, Page: -1,
			Detail: fmt.Sprintf("eager flush epoch not increasing: previous was %d", c.lastEpoch[proc])})
	}
	c.lastEpoch[proc] = epoch
	covered := make(map[page.ID]bool, len(pages))
	for _, pg := range pages {
		covered[pg] = true
	}
	for pg := range c.twinned[proc] {
		if !covered[pg] {
			c.report(Violation{Kind: "coverage", Proc: proc, Interval: epoch, Page: pg,
				Detail: "twinned page not covered by the eager flush"})
		}
	}
	c.twinned[proc] = make(map[page.ID]bool)
}

// ClockAdvanced validates per-processor vector-clock monotonicity.
func (c *Checker) ClockAdvanced(proc int, vt vc.VC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checkClock(proc, -1, vt)
}

func (c *Checker) checkClock(proc int, interval int32, vt vc.VC) {
	if prev := c.lastVT[proc]; prev != nil && !vt.Covers(prev) {
		c.report(Violation{Kind: "clock", Proc: proc, Interval: interval, Page: -1, VC: vt,
			Detail: fmt.Sprintf("vector clock regressed: previous %v not covered", []int32(prev))})
	}
	c.lastVT[proc] = vt.Clone()
}

// DiffApplied validates that incorporating writer's interval idx into
// proc's copy of pg respects happened-before: every interval that wrote pg
// and happened before (writer, idx) — as far as the applier can know about
// it — must already be incorporated. The obligation is capped by the
// applier's own vector time: LH/LU update pushes deliver diffs ahead of
// the receiver's clock (no acquire, no vt join), and such early diffs
// carry no ordering obligation for predecessors the receiver has never
// heard of (repairDominators restores word order when the stragglers
// arrive). Below the applier's vt the notice set is provably complete, so
// there the check is exact. Eager diffs (nil vt) carry no obligation.
func (c *Checker) DiffApplied(proc int, pg page.ID, writer int, idx int32, vt vc.VC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs := c.copyState(proc, pg)
	if vt != nil && c.lastVT[proc] != nil {
		own := c.lastVT[proc]
		ws := c.pageWriters[pg]
		for w := 0; w < c.n && ws != nil; w++ {
			limit := vt.Get(w)
			if w == writer && idx-1 < limit {
				limit = idx - 1
			}
			if o := own.Get(w); o < limit {
				limit = o
			}
			for _, wi := range ws[w] {
				if wi > limit {
					break
				}
				if !c.satisfied(cs, w, wi) {
					c.report(Violation{Kind: "hb", Proc: proc, Interval: idx, Page: pg, VC: vt,
						Detail: fmt.Sprintf("diff of (proc %d, interval %d) applied before its happened-before predecessor (proc %d, interval %d)", writer, idx, w, wi)})
				}
			}
		}
	}
	cs.applied[ikey(writer, idx)] = true
}

// satisfied reports whether writer w's interval wi is incorporated in cs:
// individually applied, below the adopted contiguous base, or covered by
// an adopted copy's coverage vector.
func (c *Checker) satisfied(cs *copyState, w int, wi int32) bool {
	if cs.applied[ikey(w, wi)] {
		return true
	}
	if cs.base != nil && wi <= cs.base[w] {
		return true
	}
	if cs.cover != nil {
		if info := c.intervals[ikey(w, wi)]; info != nil && info.vt != nil && cs.cover.Covers(info.vt) {
			return true
		}
	}
	return false
}

// CopyAdopted records the coverage of a fetched page image.
func (c *Checker) CopyAdopted(proc int, pg page.ID, copyVT []int32, cover vc.VC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs := c.copyState(proc, pg)
	if copyVT != nil {
		if cs.base == nil {
			cs.base = make([]int32, c.n)
		}
		for w, idx := range copyVT {
			if idx > cs.base[w] {
				cs.base[w] = idx
			}
		}
	}
	if cover != nil {
		if cs.cover == nil {
			cs.cover = vc.New(c.n)
		}
		cs.cover.Join(cover)
	}
}

// BarrierDeparted validates episode ordering and that all processors
// depart an episode with the same merged vector time.
func (c *Checker) BarrierDeparted(proc int, episode int64, vt vc.VC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if episode != c.lastEpisode[proc]+1 {
		c.report(Violation{Kind: "episode", Proc: proc, Interval: int32(episode), Page: -1, VC: vt,
			Detail: fmt.Sprintf("barrier episode out of order: previous was %d", c.lastEpisode[proc])})
	}
	c.lastEpisode[proc] = episode
	if vt == nil {
		return
	}
	if seen, ok := c.episodeVT[episode]; ok {
		if !seen.Covers(vt) || !vt.Covers(seen) {
			c.report(Violation{Kind: "episode", Proc: proc, Interval: int32(episode), Page: -1, VC: vt,
				Detail: fmt.Sprintf("episode vector time differs across processors: first seen %v", []int32(seen))})
		}
	} else {
		c.episodeVT[episode] = vt.Clone()
	}
}

// ---- memory equivalence ----

// CompareRegions compares the declared result regions of a run against a
// reference run (normally 1 processor, whose execution is sequential):
// words must match exactly, except Float regions, which may differ by
// FloatTol relative error to allow for summation-order differences.
// Violations are reported per word, capped at 10 per region. Both engines
// (core.System and live.Cluster) satisfy core.Peeker, so live runs can be
// validated against simulated or 1-node live references.
func CompareRegions(got, want core.Peeker, regions []core.ResultRegion) []Violation {
	var out []Violation
	for _, r := range regions {
		mismatches := 0
		for w := 0; w < r.Words; w++ {
			a := got.PeekU64(r.Base + core.Addr(8*w))
			b := want.PeekU64(r.Base + core.Addr(8*w))
			if a == b {
				continue
			}
			if r.Float && floatClose(a, b) {
				continue
			}
			mismatches++
			if mismatches <= 10 {
				out = append(out, Violation{Kind: "memory", Proc: -1, Interval: -1, Page: -1,
					Detail: fmt.Sprintf("region %q word %d (addr %#x): got %#x, reference %#x",
						r.Name, w, uint64(r.Base)+uint64(8*w), a, b)})
			}
		}
		if mismatches > 10 {
			out = append(out, Violation{Kind: "memory", Proc: -1, Interval: -1, Page: -1,
				Detail: fmt.Sprintf("region %q: %d further mismatching words", r.Name, mismatches-10)})
		}
	}
	return out
}

func floatClose(a, b uint64) bool {
	fa, fb := f64(a), f64(b)
	if fa == fb {
		return true
	}
	diff := fa - fb
	if diff < 0 {
		diff = -diff
	}
	ref := abs64(fa)
	if r := abs64(fb); r > ref {
		ref = r
	}
	return diff <= FloatTol*ref
}

func f64(u uint64) float64 { return math.Float64frombits(u) }

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// SortViolations orders violations for stable reporting.
func SortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Kind != vs[j].Kind {
			return vs[i].Kind < vs[j].Kind
		}
		if vs[i].Proc != vs[j].Proc {
			return vs[i].Proc < vs[j].Proc
		}
		return vs[i].Interval < vs[j].Interval
	})
}
