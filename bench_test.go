// Benchmarks regenerating every table and figure of the paper's evaluation
// section at bench scale (reduced problem sizes with the same qualitative
// behaviour; use cmd/experiments -scale paper for the full-size runs).
// Each benchmark iteration regenerates the complete experiment — a full
// protocol × processor sweep — and reports headline metrics from it.
package lrcdsm_test

import (
	"strconv"
	"testing"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/network"
)

const benchScale = harness.ScaleBench

func reportCell(b *testing.B, t *harness.Table, row, col, metric string) {
	b.Helper()
	if v, err := strconv.ParseFloat(t.Cell(row, col), 64); err == nil {
		b.ReportMetric(v, metric)
	}
}

// BenchmarkFigure6 regenerates "Speedup for Jacobi on Ethernet".
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Figure6(harness.NewRunner(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, t, "LH", "8p", "speedup@8p")
		reportCell(b, t, "LH", "16p", "speedup@16p")
	}
}

func benchFigureSet(b *testing.B, gen func(*harness.Runner, harness.Scale) (*harness.FigureSet, error)) {
	for i := 0; i < b.N; i++ {
		fs, err := gen(harness.NewRunner(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, fs.Speedup, "LH", "16p", "LH-speedup@16p")
		reportCell(b, fs.Speedup, "EU", "16p", "EU-speedup@16p")
	}
}

// BenchmarkFigure7to9 regenerates the Jacobi-on-ATM speedup, message and
// data plots.
func BenchmarkFigure7to9(b *testing.B) { benchFigureSet(b, harness.Figures7to9) }

// BenchmarkFigure10to12 regenerates the TSP plots.
func BenchmarkFigure10to12(b *testing.B) { benchFigureSet(b, harness.Figures10to12) }

// BenchmarkFigure13to15 regenerates the Water plots.
func BenchmarkFigure13to15(b *testing.B) { benchFigureSet(b, harness.Figures13to15) }

// BenchmarkFigure16to18 regenerates the Cholesky plots.
func BenchmarkFigure16to18(b *testing.B) { benchFigureSet(b, harness.Figures16to18) }

// benchAppFiguresWorkers regenerates the Jacobi-on-ATM sweep with a fixed
// worker-pool size. Comparing the Serial and Parallel variants on a
// multi-core machine shows the harness speedup; their rendered tables are
// asserted byte-identical (determinism is the point, not a side effect).
func benchAppFiguresWorkers(b *testing.B, workers int) {
	net := network.ATMNet(100, core.DefaultClockMHz)
	var baseline string
	for i := 0; i < b.N; i++ {
		fs, err := harness.AppFigures(harness.NewRunnerN(workers), "jacobi", benchScale,
			harness.DefaultProcs, net, "bench")
		if err != nil {
			b.Fatal(err)
		}
		out := fs.Speedup.String() + fs.Msgs.String() + fs.DataKB.String()
		if baseline == "" {
			baseline = out
		} else if out != baseline {
			b.Fatal("sweep output changed between iterations")
		}
	}
}

// BenchmarkAppFiguresSerial runs the sweep one cell at a time.
func BenchmarkAppFiguresSerial(b *testing.B) { benchAppFiguresWorkers(b, 1) }

// BenchmarkAppFiguresParallel runs the sweep with one worker per CPU; on
// a 4+-core machine this completes the same byte-identical sweep several
// times faster than BenchmarkAppFiguresSerial.
func BenchmarkAppFiguresParallel(b *testing.B) { benchAppFiguresWorkers(b, 0) }

// BenchmarkTable1 measures the message cost of the primitive operations of
// Table 1 directly: a remote lock acquisition and an access miss.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Protocol = core.LH
		cfg.Procs = 4
		sys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a := sys.AllocPage(64)
		lk := sys.NewLocks(4)
		_ = lk
		st, err := sys.Run(func(p *core.Proc) {
			if p.ID() != 0 {
				return
			}
			p.Lock(2) // remote manager
			p.WriteF64(a, 1)
			p.Unlock(2)
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.LockMsgs), "lock-msgs")
	}
}

// BenchmarkTable2 regenerates "Speedups With Different Network
// Characteristics" (LH, 16 processors).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table2(harness.NewRunner(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, t, "100 Mbit ATM", "Jacobi", "jacobi-atm100")
		reportCell(b, t, "10 Mbit Ethernet w/ Coll", "Jacobi", "jacobi-eth")
	}
}

// BenchmarkTable3 regenerates "Speedups With Varying Software Overhead".
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table3(harness.NewRunner(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, t, "water/Zero", "LH", "water-zero-LH")
		reportCell(b, t, "water/Normal", "LH", "water-normal-LH")
	}
}

// BenchmarkTable4 regenerates "Speedups with Different Processor Speeds".
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table4(harness.NewRunner(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, t, "20", "Water", "water@20MHz")
		reportCell(b, t, "80", "Water", "water@80MHz")
	}
}

// BenchmarkTable5 regenerates "Effect of Page Size".
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table5(harness.NewRunner(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, t, "16p/4096B", "Water", "water-4096")
		reportCell(b, t, "16p/1024B", "Water", "water-1024")
	}
}

// BenchmarkSyncShare measures the Section 6.2 statistics (sync-message
// share per workload under LH).
func BenchmarkSyncShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.SyncStats(harness.NewRunner(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

// ---- ablation benchmarks (design choices called out in DESIGN.md) ----

// BenchmarkAblationDiffs contrasts diff-based data movement (LH) with
// whole-page movement (EI) on Water: the diff mechanism is what keeps data
// volume proportional to what actually changed.
func BenchmarkAblationDiffs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := harness.DefaultSpec("water", benchScale)
		spec.Procs = 8
		lh, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		spec.Protocol = core.EI
		ei, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lh.Stats.DataKB(), "LH-dataKB")
		b.ReportMetric(ei.Stats.DataKB(), "EI-dataKB")
	}
}

// BenchmarkAblationCopyset contrasts LH (copyset-directed diff
// piggybacking) with LI (no piggybacking): the copyset heuristic is what
// removes access misses on migratory data.
func BenchmarkAblationCopyset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := harness.DefaultSpec("water", benchScale)
		spec.Procs = 8
		lh, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		spec.Protocol = core.LI
		li, err := harness.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(lh.Stats.AccessMisses), "LH-misses")
		b.ReportMetric(float64(li.Stats.AccessMisses), "LI-misses")
	}
}

// BenchmarkAblationLockForward contrasts the paper's distributed lock
// queue (release grants directly to the next acquirer) with a centralized
// manager that the token returns to at every release.
func BenchmarkAblationLockForward(b *testing.B) {
	run := func(central bool) *core.RunStats {
		cfg := core.DefaultConfig()
		cfg.Protocol = core.LH
		cfg.Procs = 8
		cfg.Net = network.ATMNet(100, core.DefaultClockMHz)
		cfg.CentralizedLocks = central
		sys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a := sys.Alloc(8)
		lk := sys.NewLock()
		st, err := sys.Run(func(p *core.Proc) {
			for i := 0; i < 40; i++ {
				p.Lock(lk)
				p.WriteI64(a, p.ReadI64(a)+1)
				p.Unlock(lk)
				p.Compute(20_000)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	for i := 0; i < b.N; i++ {
		d := run(false)
		c := run(true)
		b.ReportMetric(float64(d.Msgs), "distributed-msgs")
		b.ReportMetric(float64(c.Msgs), "centralized-msgs")
	}
}

// BenchmarkReacquire measures the Section 6.2 lock-reacquisition effect:
// lazy releases of a repeatedly reacquired lock are silent, eager ones
// flush to every cacher.
func BenchmarkReacquire(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.ReacquireExperiment(8, 50)
		if err != nil {
			b.Fatal(err)
		}
		if v, err := strconv.ParseFloat(t.Cell("LH", "msgs"), 64); err == nil {
			b.ReportMetric(v, "LH-msgs")
		}
		if v, err := strconv.ParseFloat(t.Cell("EU", "msgs"), 64); err == nil {
			b.ReportMetric(v, "EU-msgs")
		}
	}
}
