# Development targets. `make verify` runs everything CI runs: build, vet,
# the project's own dsmlint analyzers, the race-enabled test suite, and an
# invariant-checked simulation smoke test.

GO ?= go

.PHONY: build vet lint test race check-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/dsmlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check-smoke:
	$(GO) run ./cmd/dsmsim -app water -protocol LH -procs 4 -scale test -check
	$(GO) run ./cmd/dsmsim -app tsp -protocol EI -procs 4 -scale test -check

verify: build vet lint race check-smoke
