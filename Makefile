# Development targets. `make verify` runs everything CI runs: build, vet,
# the project's own dsmlint analyzers, the race-enabled test suite, an
# invariant-checked simulation smoke test, and the live-runtime cluster
# tests (in-proc under the race detector, plus a TCP loopback smoke run).

GO ?= go

.PHONY: build vet lint test race check-smoke live chaos recover failover scale-smoke serve serve-smoke endurance bench-live bench-scale bench-serve verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/dsmlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check-smoke:
	$(GO) run ./cmd/dsmsim -app water -protocol LH -procs 4 -scale test -check
	$(GO) run ./cmd/dsmsim -app tsp -protocol EI -procs 4 -scale test -check

# live: the live DSM runtime's gate — all four apps on a 4-node in-proc
# cluster under -race (result regions checked against a 1-node
# reference), then a 2-node jacobi over real TCP loopback sockets.
live:
	$(GO) test -race -count=1 -timeout 300s ./internal/live/...
	$(GO) run ./cmd/dsmd -app jacobi -nodes 2 -transport tcp -scale test -check -timeout 60s

# chaos: the robustness gate — the seeded chaos soaks (all apps under
# injected drops/dups/reorders in-proc, resets over TCP loopback, and
# the partition fail-fast check) under -race, then one seeded dsmd run
# with faults on real sockets, result regions checked against a
# fault-free 1-node reference.
chaos:
	$(GO) test -race -count=1 -timeout 300s -run 'TestChaosSoak|TestPartitionAbortsFast' ./internal/live/
	$(GO) run ./cmd/dsmd -app jacobi -nodes 4 -transport tcp -scale test \
		-chaos-seed 42 -drop 0.03 -dup 0.03 -delay-p 0.05 -delay 2ms -reset 0.05 \
		-retry 10ms -hb-interval 50ms -check -timeout 60s

# recover: the crash-recovery gate — the seeded kill+restart soaks (all
# four apps × {LI, LH} with a node killed twice mid-run, in-proc and
# over TCP loopback; lost-store and on-disk-store variants; the
# partition-vs-restart discrimination check), the incarnation-fencing
# and reply-cache-bound tests, and the restart-budget degradation check,
# all under -race — then one seeded dsmd run that kills and restarts a
# node on real sockets with frame faults in the mix, result regions
# checked against a fault-free 1-node reference.
recover:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'TestRecovery|TestPartitionHealSupervised|TestRestartBudgetExhausted|TestIncarnationFencing|TestReplyCacheBounded' \
		./internal/live/...
	$(GO) run ./cmd/dsmd -app jacobi -nodes 4 -transport tcp -scale test \
		-recover -crash 2:25:5ms -chaos-seed 7 -drop 0.01 -dup 0.02 \
		-retry 10ms -hb-interval 50ms -check -timeout 60s -deadline 120s

# failover: the replicated control plane's gate — the coordinator-kill
# soaks (all four apps × {LI, LH} with node 0 — manager, barrier root,
# bootstrap leader — killed mid-run, in-proc and over TCP loopback; the
# mid-checkpoint-confirm kill; the durable serving failover with zero
# acked-write loss) under -race, then one seeded dsmd run that kills
# node 0 on real sockets with frame faults in the mix, result regions
# checked against a fault-free 1-node reference.
failover:
	$(GO) test -race -count=1 -timeout 600s \
		-run 'TestFailover|TestServeFailoverSoak' ./internal/live/... ./internal/serve/
	$(GO) run ./cmd/dsmd -app jacobi -nodes 4 -transport tcp -scale test \
		-recover -crash 0:30:5ms -chaos-seed 7 -drop 0.01 -dup 0.02 \
		-retry 10ms -hb-interval 50ms -hb-timeout 2s -check -timeout 60s -deadline 120s

# scale-smoke: the decentralized synchronization plane's scaling gate —
# all four apps × {LI, LH} on 8- and 16-node in-proc clusters under
# -race, result regions checked against a 1-node reference, plus one
# 8-node dsmd run over real TCP loopback sockets.
scale-smoke:
	$(GO) test -race -count=1 -timeout 300s -run 'TestAppsAtScale' ./internal/live/
	$(GO) run ./cmd/dsmd -app jacobi -nodes 8 -transport tcp -scale test -check -timeout 60s

# serve: the key-value serving gate — the full serve/loadgen/hist test
# tree (dispatcher, TCP frontend, durable group commit, the chaos soak
# that kills a serving node mid-load) under -race, then one dsmserve run
# over real TCP loopback DSM sockets checked against a 1-node reference.
serve:
	$(GO) test -race -count=1 -timeout 300s ./internal/serve/...
	$(GO) run ./cmd/dsmserve -nodes 2 -transport tcp -keys 4096 -clients 8 -ops 4000 -check -timeout 60s

# serve-smoke: the quick serving gate for `make verify` — a small mix on
# a 2-node cluster under -race, in-proc and through the TCP frontend,
# both matching the 1-node reference.
serve-smoke:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'TestServeInprocVsReference|TestServeFrontendTCP' ./internal/serve/

# endurance: the long-haul gate — the control-plane soak (all four apps
# × {LI, LH}, the coordinator killed every round, membership growth and
# slot-corruption rounds, a compaction-bounded consensus log, byte-
# identical results vs a 1-node reference) and the durable serving soak
# under repeated coordinator kills, both under -race with a CI-sized
# episode budget (override: make endurance ENDURANCE_EPISODES=2000),
# then one seeded dsmd run over real TCP sockets that compacts the log,
# promotes a replica at runtime and re-seeds the restarted coordinator
# by snapshot, checked against a fault-free 1-node reference.
ENDURANCE_EPISODES ?= 400
endurance:
	DSM_ENDURANCE=1 DSM_ENDURANCE_EPISODES=$(ENDURANCE_EPISODES) \
		$(GO) test -race -count=1 -timeout 1200s -run 'TestEndurance' ./internal/live/ ./internal/serve/
	$(GO) run ./cmd/dsmd -app cholesky -nodes 4 -transport tcp -scale test \
		-recover -crash 0:600:5ms -compact-every 2 -voters 3 -add-replica 3:5ms \
		-retry 10ms -hb-interval 50ms -hb-timeout 2s -check -timeout 60s -deadline 120s

# bench-serve regenerates BENCH_serve.json: the serving benchmark —
# throughput and latency quantiles for the uniform update mix and the
# zipfian read-heavy mix at 1, 2, 4 and 8 serving nodes, one JSON
# object per line.
bench-serve:
	@rm -f BENCH_serve.json
	@for nodes in 1 2 4 8; do \
		$(GO) run ./cmd/dsmserve -nodes $$nodes -mix update-uniform -read-frac 0.5 -dist uniform \
			-clients 32 -ops 200000 -keys 32768 -seed 1 -json >> BENCH_serve.json || exit 1; \
		$(GO) run ./cmd/dsmserve -nodes $$nodes -mix read-heavy-zipf -read-frac 0.95 -dist zipfian -theta 0.99 \
			-clients 32 -ops 200000 -keys 32768 -seed 1 -json >> BENCH_serve.json || exit 1; \
	done
	@wc -l BENCH_serve.json

# bench-live regenerates BENCH_live.json: one JSON object per line, one
# line per app × protocol on a 4-node in-proc cluster at bench scale.
bench-live:
	@rm -f BENCH_live.json
	@for app in jacobi tsp water cholesky; do \
		for prot in LH LI; do \
			$(GO) run ./cmd/dsmd -app $$app -protocol $$prot -nodes 4 -scale bench -json >> BENCH_live.json || exit 1; \
		done; \
	done
	@wc -l BENCH_live.json

# bench-scale regenerates BENCH_scale.json: the scaling sweep — every
# app × protocol at 8 and 16 in-proc nodes at bench scale, one JSON
# object per line, for reading message balance and sync-wait trends
# against the 4-node numbers in BENCH_live.json.
bench-scale:
	@rm -f BENCH_scale.json
	@for nodes in 8 16; do \
		for app in jacobi tsp water cholesky; do \
			for prot in LH LI; do \
				$(GO) run ./cmd/dsmd -app $$app -protocol $$prot -nodes $$nodes -scale bench -json >> BENCH_scale.json || exit 1; \
			done; \
		done; \
	done
	@wc -l BENCH_scale.json

verify: build vet lint race check-smoke live chaos recover failover scale-smoke serve-smoke endurance
