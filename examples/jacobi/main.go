// Grid relaxation on a DSM: a small Jacobi solver written directly against
// the public API (independent of the internal benchmark workloads),
// showing the barrier-synchronized nearest-neighbor pattern the paper's
// coarse-grained results are built on, swept across Ethernet and ATM.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"lrcdsm"
)

const (
	n     = 64 // grid dimension
	iters = 8
)

// run executes the solver and returns elapsed cycles and a checksum.
func run(cfg lrcdsm.Config) (cycles int64, sum float64) {
	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	grid := [2]lrcdsm.Addr{sys.AllocPage(n * n * 8), sys.AllocPage(n * n * 8)}
	// hot top edge
	for c := 0; c < n; c++ {
		sys.InitF64(grid[0]+lrcdsm.Addr(8*c), 100)
		sys.InitF64(grid[1]+lrcdsm.Addr(8*c), 100)
	}
	bar := sys.NewBarrier()

	at := func(g lrcdsm.Addr, r, c int) lrcdsm.Addr { return g + lrcdsm.Addr(8*(r*n+c)) }
	stats, err := sys.Run(func(p *lrcdsm.Proc) {
		lo := 1 + p.ID()*(n-2)/p.N()
		hi := 1 + (p.ID()+1)*(n-2)/p.N()
		for it := 0; it < iters; it++ {
			src, dst := grid[it%2], grid[(it+1)%2]
			for r := lo; r < hi; r++ {
				for c := 1; c < n-1; c++ {
					v := 0.25 * (p.ReadF64(at(src, r-1, c)) + p.ReadF64(at(src, r+1, c)) +
						p.ReadF64(at(src, r, c-1)) + p.ReadF64(at(src, r, c+1)))
					p.WriteF64(at(dst, r, c), v)
					p.Compute(10)
				}
			}
			p.Barrier(bar)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	final := grid[iters%2]
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			sum += sys.PeekF64(at(final, r, c))
		}
	}
	return int64(stats.Cycles), sum
}

func main() {
	nets := []struct {
		name string
		net  lrcdsm.NetworkParams
	}{
		{"10 Mbit Ethernet (w/ collisions)", lrcdsm.Ethernet10(40, true)},
		{"100 Mbit ATM", lrcdsm.ATMNet(100, 40)},
	}
	fmt.Printf("Jacobi %dx%d, %d iterations, LH protocol\n\n", n, n, iters)
	for _, nc := range nets {
		fmt.Printf("-- %s --\n", nc.name)
		base := int64(0)
		var baseSum float64
		for _, procs := range []int{1, 2, 4, 8} {
			cfg := lrcdsm.DefaultConfig()
			cfg.Protocol = lrcdsm.LH
			cfg.Procs = procs
			cfg.Net = nc.net
			cycles, sum := run(cfg)
			if procs == 1 {
				base, baseSum = cycles, sum
			} else if sum != baseSum {
				log.Fatalf("checksum mismatch at %d procs: %v != %v", procs, sum, baseSum)
			}
			fmt.Printf("  %2d procs: %12d cycles  speedup %.2f\n",
				procs, cycles, float64(base)/float64(cycles))
		}
		fmt.Println()
	}
	fmt.Println("The point-to-point ATM sustains speedup where the shared Ethernet saturates.")
}
