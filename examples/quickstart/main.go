// Quickstart: a lock-protected shared counter on a 4-processor DSM.
//
// Demonstrates the whole public API surface: building a system, allocating
// and initializing shared memory, synchronizing with a lock, reading final
// memory, and inspecting run statistics — then contrasts the five
// protocols on the same program.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lrcdsm"
)

func main() {
	fmt.Println("== a shared counter under the lazy hybrid protocol ==")
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = lrcdsm.LH
	cfg.Procs = 4
	cfg.Net = lrcdsm.ATMNet(100, 40)

	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	counter := sys.Alloc(8)
	lock := sys.NewLock()

	const perProc = 50
	stats, err := sys.Run(func(p *lrcdsm.Proc) {
		for i := 0; i < perProc; i++ {
			p.Lock(lock)
			p.WriteI64(counter, p.ReadI64(counter)+1)
			p.Unlock(lock)
			p.Compute(10_000) // private work between critical sections
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final counter: %d (want %d)\n", sys.PeekI64(counter), cfg.Procs*perProc)
	fmt.Printf("elapsed: %d cycles (%.2f ms at 40 MHz)\n", stats.Cycles, 1000*stats.Seconds(40))
	fmt.Printf("messages: %d (%.0f%% synchronization), data moved: %.1f KB\n\n",
		stats.Msgs, 100*stats.SyncShare(), stats.DataKB())

	fmt.Println("== the same program under all five protocols ==")
	fmt.Printf("%-4s  %-12s  %-8s  %-10s  %-8s\n", "prot", "cycles", "msgs", "data KB", "misses")
	for _, prot := range lrcdsm.Protocols {
		c := cfg
		c.Protocol = prot
		s, err := lrcdsm.NewSystem(c)
		if err != nil {
			log.Fatal(err)
		}
		a := s.Alloc(8)
		lk := s.NewLock()
		st, err := s.Run(func(p *lrcdsm.Proc) {
			for i := 0; i < perProc; i++ {
				p.Lock(lk)
				p.WriteI64(a, p.ReadI64(a)+1)
				p.Unlock(lk)
				p.Compute(10_000)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4v  %-12d  %-8d  %-10.1f  %-8d\n",
			prot, st.Cycles, st.Msgs, st.DataKB(), st.AccessMisses)
	}
}
