// Protocol anatomy: a tiny two-processor program annotated with the
// message counts each of the five protocols produces, making the
// eager-versus-lazy and invalidate-versus-update trade-offs concrete.
//
// The program is the paper's critical-section pattern: processor 0 writes
// a page under a lock; processor 1, which also caches the page, later
// acquires the same lock and reads the data.
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"lrcdsm"
)

func trial(prot lrcdsm.Protocol) *lrcdsm.RunStats {
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = prot
	cfg.Procs = 2
	cfg.Net = lrcdsm.ATMNet(100, 40)
	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	data := sys.AllocPage(64)
	lock := sys.NewLock()
	stats, err := sys.Run(func(p *lrcdsm.Proc) {
		if p.ID() == 1 {
			_ = p.ReadF64(data) // cache the page early
			p.Compute(5_000_000)
			p.Lock(lock)
			if p.ReadF64(data) != 42 { // must observe the release-ordered write
				log.Fatalf("%v: stale read after acquire", prot)
			}
			p.Unlock(lock)
		} else {
			p.Compute(1_000_000)
			p.Lock(lock)
			p.WriteF64(data, 42)
			p.Unlock(lock)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return stats
}

func main() {
	fmt.Println("One locked write on processor 0, one locked read on processor 1.")
	fmt.Println("(Both processors cache the page; proc 1's initial fetch costs 2 msgs.)")
	fmt.Println()
	fmt.Printf("%-4s  %6s  %6s  %8s  %8s  %s\n",
		"prot", "msgs", "misses", "data B", "w/ data", "how the write travelled")
	how := map[lrcdsm.Protocol]string{
		lrcdsm.EU: "pushed to all cachers at the release (update)",
		lrcdsm.EI: "cachers invalidated at release; refetch whole page on miss",
		lrcdsm.LI: "notice on the grant; invalidate; diff fetched on miss",
		lrcdsm.LU: "notice on the grant; diffs pulled before acquire returns",
		lrcdsm.LH: "diff piggybacked on the lock grant itself (no miss)",
	}
	for _, prot := range lrcdsm.Protocols {
		st := trial(prot)
		fmt.Printf("%-4v  %6d  %6d  %8d  %8d  %s\n",
			prot, st.Msgs, st.AccessMisses, st.DataBytes, st.SyncDataMsgs, how[prot])
	}
	fmt.Println()
	fmt.Println("LH gets LI's three-message lock transfer *and* LU's zero access misses —")
	fmt.Println("the combination the paper introduces it for.")
}
