// Task queue: a work-stealing-style shared queue with a global result
// accumulator — the fine-grained synchronization pattern that makes
// Cholesky-like workloads hard for software DSMs. Sweeps task granularity
// to show the paper's central finding: below a certain computation-to-
// synchronization ratio, speedup evaporates no matter the protocol.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"

	"lrcdsm"
)

const nTasks = 200

// run executes nTasks units of `grain` cycles each, dequeued from a shared
// lock-protected queue, and returns elapsed cycles.
func run(prot lrcdsm.Protocol, procs int, grain int64) int64 {
	cfg := lrcdsm.DefaultConfig()
	cfg.Protocol = prot
	cfg.Procs = procs
	cfg.Net = lrcdsm.ATMNet(100, 40)
	sys, err := lrcdsm.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	next := sys.AllocPage(8)
	result := sys.AllocPage(8)
	qlock := sys.NewLock()
	rlock := sys.NewLock()
	stats, err := sys.Run(func(p *lrcdsm.Proc) {
		for {
			p.Lock(qlock)
			t := p.ReadI64(next)
			if t < nTasks {
				p.WriteI64(next, t+1)
			}
			p.Unlock(qlock)
			if t >= nTasks {
				return
			}
			p.Compute(grain) // the "task"
			p.Lock(rlock)
			p.WriteI64(result, p.ReadI64(result)+t)
			p.Unlock(rlock)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	want := int64(nTasks * (nTasks - 1) / 2)
	if got := sys.PeekI64(result); got != want {
		log.Fatalf("result %d, want %d", got, want)
	}
	return int64(stats.Cycles)
}

func main() {
	fmt.Printf("%d tasks from a lock-protected shared queue, LH vs EU, 8 processors\n\n", nTasks)
	fmt.Printf("%-14s  %-10s  %-10s\n", "task grain", "LH speedup", "EU speedup")
	for _, grain := range []int64{1_000, 10_000, 100_000, 1_000_000} {
		row := fmt.Sprintf("%-14d", grain)
		for _, prot := range []lrcdsm.Protocol{lrcdsm.LH, lrcdsm.EU} {
			base := run(prot, 1, grain)
			par := run(prot, 8, grain)
			row += fmt.Sprintf("  %-10.2f", float64(base)/float64(par))
		}
		fmt.Println(row)
	}
	fmt.Println("\nCoarse tasks scale; fine tasks drown in lock-acquisition latency —")
	fmt.Println("the paper's conclusion that synchronization, not bandwidth, is the")
	fmt.Println("residual bottleneck for software DSM.")
}
