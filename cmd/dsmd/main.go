// Command dsmd runs one DSM application on the live runtime: an N-node
// cluster of goroutine-backed LRC protocol engines connected by an
// in-process or TCP-loopback transport, executing the same workloads as
// the simulator (cmd/dsmsim) with real concurrency.
//
// Usage:
//
//	dsmd -app jacobi -nodes 4 -protocol LH -transport inproc -scale test
//	dsmd -app water -nodes 2 -transport tcp -json
//
// With -json, one JSON object describing the run — configuration,
// elapsed time, per-node and total protocol counters — is printed to
// stdout (one object per run, suitable for appending to a JSON-lines
// file). With -check, the result regions are compared against a 1-node
// reference run of the live engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lrcdsm/internal/check"
	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live"
	"lrcdsm/internal/live/transport"
)

// runReport is the -json output schema: one object per run.
type runReport struct {
	App       string      `json:"app"`
	Scale     string      `json:"scale"`
	Transport string      `json:"transport"`
	Stats     *live.Stats `json:"stats"`
}

func main() {
	var (
		appName   = flag.String("app", "jacobi", "workload: jacobi, tsp, water, cholesky")
		protocol  = flag.String("protocol", "LH", "live protocol: LH (hybrid update) or LI (invalidate)")
		nodes     = flag.Int("nodes", 4, "cluster size (one goroutine-backed node per processor)")
		trans     = flag.String("transport", "inproc", "transport: inproc, tcp (loopback sockets)")
		scaleName = flag.String("scale", "test", "problem scale: paper, bench, test")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-wait RPC timeout")
		jsonOut   = flag.Bool("json", false, "print the run report as one JSON object")
		checkRun  = flag.Bool("check", false, "compare result regions against a 1-node live reference run")
	)
	flag.Parse()

	prot, err := core.ParseProtocol(*protocol)
	if err != nil {
		fatal(err)
	}
	scale, err := harness.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}

	cluster, stats, err := runLive(*appName, scale, prot, *nodes, *trans, *timeout)
	if err != nil {
		fatal(err)
	}

	if *checkRun && *nodes > 1 {
		ref, _, err := runLive(*appName, scale, prot, 1, "inproc", *timeout)
		if err != nil {
			fatal(fmt.Errorf("reference run: %w", err))
		}
		app, err := harness.NewApp(*appName, scale)
		if err != nil {
			fatal(err)
		}
		if ra, ok := app.(harness.ResultApp); ok {
			if vs := check.CompareRegions(cluster, ref, ra.ResultRegions()); len(vs) > 0 {
				for _, v := range vs {
					fmt.Fprintf(os.Stderr, "region mismatch: %s\n", v.String())
				}
				fatal(fmt.Errorf("%d result-region mismatch(es) against 1-node reference", len(vs)))
			}
			fmt.Fprintf(os.Stderr, "check: result regions match 1-node reference\n")
		}
	}

	if *jsonOut {
		rep := runReport{App: *appName, Scale: *scaleName, Transport: *trans, Stats: stats}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(*appName, *trans, stats)
}

// runLive executes one workload on a fresh live cluster and verifies its
// result.
func runLive(appName string, scale harness.Scale, prot core.Protocol, nodes int, trans string, timeout time.Duration) (*live.Cluster, *live.Stats, error) {
	app, err := harness.NewApp(appName, scale)
	if err != nil {
		return nil, nil, err
	}
	var trs []transport.Transport
	switch trans {
	case "inproc":
	case "tcp":
		trs, err = transport.NewTCPLoopback(nodes, transport.TCPOptions{})
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("unknown transport %q (want inproc or tcp)", trans)
	}
	cluster, err := live.New(live.Config{
		Nodes:      nodes,
		Protocol:   prot,
		Transports: trs,
		RPCTimeout: timeout,
	})
	if err != nil {
		return nil, nil, err
	}
	app.Configure(cluster)
	stats, err := cluster.Run(func(w core.Worker) { app.Worker(w) })
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%v/%dn: %w", appName, prot, nodes, err)
	}
	if err := app.Verify(cluster); err != nil {
		return nil, nil, fmt.Errorf("%s/%v/%dn failed verification: %w", appName, prot, nodes, err)
	}
	return cluster, stats, nil
}

func printReport(appName, trans string, st *live.Stats) {
	fmt.Printf("%s on %d live nodes (%s, %s): %.1f ms\n",
		appName, st.Nodes, st.Protocol, trans, float64(st.ElapsedNs)/1e6)
	fmt.Printf("  msgs %d (%.1f KB), data %.1f KB, faults %d, fetches %d, pulls %d\n",
		st.Total.MsgsSent, float64(st.Total.BytesSent)/1024,
		float64(st.Total.DataBytes)/1024,
		st.Total.PageFaults, st.Total.PageFetches, st.Total.DiffPulls)
	fmt.Printf("  intervals %d, diffs created %d / applied %d (%.1f KB), invalidations %d\n",
		st.Total.Intervals, st.Total.DiffsCreated, st.Total.DiffsApplied,
		float64(st.Total.DiffBytes)/1024, st.Total.Invalidations)
	fmt.Printf("  locks %d (wait %.1f ms), barriers %d (wait %.1f ms)\n",
		st.Total.LockAcquires, float64(st.Total.LockWaitNs)/1e6,
		st.Total.BarrierEpisodes, float64(st.Total.BarrierWaitNs)/1e6)
	for _, ns := range st.PerNode {
		fmt.Printf("  node %d: sent %d msgs, faults %d, intervals %d\n",
			ns.Node, ns.MsgsSent, ns.PageFaults, ns.Intervals)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmd:", err)
	os.Exit(1)
}
