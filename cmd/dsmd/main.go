// Command dsmd runs one DSM application on the live runtime: an N-node
// cluster of goroutine-backed LRC protocol engines connected by an
// in-process or TCP-loopback transport, executing the same workloads as
// the simulator (cmd/dsmsim) with real concurrency.
//
// Usage:
//
//	dsmd -app jacobi -nodes 4 -protocol LH -transport inproc -scale test
//	dsmd -app water -nodes 2 -transport tcp -json
//	dsmd -app tsp -nodes 4 -chaos-seed 42 -drop 0.05 -delay 2ms -check
//	dsmd -app jacobi -nodes 4 -recover -crash 2:50:10ms -check
//
// With -json, one JSON object describing the run — configuration,
// elapsed time, per-node and total protocol counters, and any injected
// faults — is printed to stdout (one object per run, suitable for
// appending to a JSON-lines file). With -check, the result regions are
// compared against a 1-node reference run of the live engine.
//
// The -drop/-dup/-delay/-reset/-partition flags inject transport faults
// (internal/live/chaos) on a schedule derived from -chaos-seed, so a
// faulty run is reproducible; -retry, -hb-interval and -hb-timeout tune
// the engine's recovery machinery to match the fault rate.
//
// With -recover, the cluster survives node crashes: barrier-aligned
// checkpoints are taken every -ckpt-every episodes (on disk under
// -ckpt-dir, in memory otherwise), and a node killed by the -crash
// schedule is restarted from the last stable checkpoint up to
// -max-restarts times before the run degrades to the structured abort a
// recovery-free cluster reports. -deadline bounds the whole run in wall
// time; on expiry dsmd dumps a stats snapshot as JSON and exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lrcdsm/internal/check"
	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live"
	"lrcdsm/internal/live/chaos"
	ckpt "lrcdsm/internal/live/recover"
	"lrcdsm/internal/live/transport"
)

// runReport is the -json output schema: one object per run.
type runReport struct {
	App       string          `json:"app"`
	Scale     string          `json:"scale"`
	Transport string          `json:"transport"`
	ChaosSeed int64           `json:"chaos_seed,omitempty"`
	Chaos     *chaos.Counters `json:"chaos,omitempty"`
	Stats     *live.Stats     `json:"stats"`
}

// runOpts carries the tuning knobs from flags into runLive.
type runOpts struct {
	timeout    time.Duration
	retryBase  time.Duration
	hbInterval time.Duration
	hbTimeout  time.Duration
	chaos      *chaos.Config // nil: no fault injection

	// Recovery knobs (-recover and friends).
	recover     bool
	maxRestarts int
	ckptEvery   int64
	ckptDir     string
	crashes     []chaos.Crash
	deadline    time.Duration
	seed        int64

	// Long-haul control-plane knobs.
	compactEvery int64
	voters       int
	addReplicas  []live.ReplicaAdd
}

func main() {
	var (
		appName   = flag.String("app", "jacobi", "workload: jacobi, tsp, water, cholesky")
		protocol  = flag.String("protocol", "LH", "live protocol: LH (hybrid update) or LI (invalidate)")
		nodes     = flag.Int("nodes", 4, "cluster size (one goroutine-backed node per processor)")
		trans     = flag.String("transport", "inproc", "transport: inproc, tcp (loopback sockets)")
		scaleName = flag.String("scale", "test", "problem scale: paper, bench, test")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-wait RPC timeout")
		jsonOut   = flag.Bool("json", false, "print the run report as one JSON object")
		checkRun  = flag.Bool("check", false, "compare result regions against a 1-node live reference run")

		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the fault-injection schedule")
		dropP     = flag.Float64("drop", 0, "per-frame probability of a silent drop")
		dupP      = flag.Float64("dup", 0, "per-frame probability of a duplicate send")
		delayP    = flag.Float64("delay-p", 0, "per-frame probability of a reordering delay")
		delayMax  = flag.Duration("delay", 2*time.Millisecond, "maximum injected delay (with -delay-p)")
		resetP    = flag.Float64("reset", 0, "per-frame probability of a connection reset (tcp)")
		partition = flag.String("partition", "", "partition a node pair: a:b[:from[:dur]] (durations; dur 0 = forever)")

		retryBase  = flag.Duration("retry", 0, "base RPC retransmission backoff (0: default 200ms)")
		hbInterval = flag.Duration("hb-interval", 0, "heartbeat beacon interval (0: default 1s)")
		hbTimeout  = flag.Duration("hb-timeout", 0, "silence before the manager declares a node down (0: default 10s, negative: disable)")

		recoverRun  = flag.Bool("recover", false, "survive node crashes: checkpoint at barriers, restart killed nodes")
		maxRestarts = flag.Int("max-restarts", 3, "restart budget before degrading to a structured abort (with -recover)")
		ckptEvery   = flag.Int64("ckpt-every", 1, "checkpoint at every Nth barrier episode (with -recover)")
		ckptDir     = flag.String("ckpt-dir", "", "directory for on-disk checkpoint stores (default: in-memory)")
		crashSpec   = flag.String("crash", "", "kill schedule: node:atop[:delay][,...] — kill node when the cluster send count reaches atop, restart after delay")
		deadline    = flag.Duration("deadline", 0, "wall-clock budget for the run; on expiry dump a stats JSON snapshot and exit nonzero")

		compactEvery = flag.Int64("compact-every", 0, "consensus log-compaction threshold in applied entries (0: default 512, negative: disable; with -recover)")
		votersN      = flag.Int("voters", 0, "initial consensus voting membership: nodes [0,N) vote, the rest run non-voting replicas (0: all; with -recover)")
		addReplica   = flag.String("add-replica", "", "runtime voter promotions: node:delay[,...] — promote node to a voter after delay (with -recover)")
	)
	flag.Parse()

	prot, err := core.ParseProtocol(*protocol)
	if err != nil {
		fatal(err)
	}
	scale, err := harness.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}

	opts := runOpts{
		timeout:     *timeout,
		retryBase:   *retryBase,
		hbInterval:  *hbInterval,
		hbTimeout:   *hbTimeout,
		recover:     *recoverRun,
		maxRestarts: *maxRestarts,
		ckptEvery:   *ckptEvery,
		ckptDir:     *ckptDir,
		deadline:    *deadline,
		seed:        *chaosSeed,

		compactEvery: *compactEvery,
		voters:       *votersN,
	}
	if *addReplica != "" {
		adds, err := parseAddReplicas(*addReplica)
		if err != nil {
			fatal(err)
		}
		opts.addReplicas = adds
	}
	if *crashSpec != "" {
		crashes, err := parseCrashes(*crashSpec)
		if err != nil {
			fatal(err)
		}
		opts.crashes = crashes
	}
	if *dropP > 0 || *dupP > 0 || *delayP > 0 || *resetP > 0 || *partition != "" {
		cfg := &chaos.Config{
			Seed:     *chaosSeed,
			DropP:    *dropP,
			DupP:     *dupP,
			DelayP:   *delayP,
			DelayMax: *delayMax,
			ResetP:   *resetP,
		}
		if *partition != "" {
			p, err := parsePartition(*partition)
			if err != nil {
				fatal(err)
			}
			cfg.Partitions = []chaos.Partition{p}
		}
		opts.chaos = cfg
	}

	cluster, stats, faults, err := runLive(*appName, scale, prot, *nodes, *trans, opts)
	if err != nil {
		fatal(err)
	}

	if *checkRun && *nodes > 1 {
		// The reference runs fault-free: it defines what the faulty run
		// must still compute.
		ref, _, _, err := runLive(*appName, scale, prot, 1, "inproc", runOpts{timeout: *timeout})
		if err != nil {
			fatal(fmt.Errorf("reference run: %w", err))
		}
		app, err := harness.NewApp(*appName, scale)
		if err != nil {
			fatal(err)
		}
		if ra, ok := app.(harness.ResultApp); ok {
			if vs := check.CompareRegions(cluster, ref, ra.ResultRegions()); len(vs) > 0 {
				for _, v := range vs {
					fmt.Fprintf(os.Stderr, "region mismatch: %s\n", v.String())
				}
				fatal(fmt.Errorf("%d result-region mismatch(es) against 1-node reference", len(vs)))
			}
			fmt.Fprintf(os.Stderr, "check: result regions match 1-node reference\n")
		}
	}

	if *jsonOut {
		rep := runReport{App: *appName, Scale: *scaleName, Transport: *trans, Stats: stats}
		if faults != nil {
			rep.ChaosSeed = *chaosSeed
			rep.Chaos = faults
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(*appName, *trans, stats, faults)
}

// parsePartition reads "a:b[:from[:dur]]" — node pair, optional window
// start and length (Go durations; a zero or omitted length partitions
// forever).
func parsePartition(s string) (chaos.Partition, error) {
	var p chaos.Partition
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return p, fmt.Errorf("-partition %q: want a:b[:from[:dur]]", s)
	}
	a, errA := strconv.Atoi(parts[0])
	b, errB := strconv.Atoi(parts[1])
	if errA != nil || errB != nil || a == b {
		return p, fmt.Errorf("-partition %q: bad node pair", s)
	}
	p.A, p.B = a, b
	if len(parts) >= 3 {
		d, err := time.ParseDuration(parts[2])
		if err != nil {
			return p, fmt.Errorf("-partition %q: bad window start: %w", s, err)
		}
		p.From = d
	}
	if len(parts) == 4 {
		d, err := time.ParseDuration(parts[3])
		if err != nil {
			return p, fmt.Errorf("-partition %q: bad window length: %w", s, err)
		}
		p.Dur = d
	}
	return p, nil
}

// parseCrashes reads "node:atop[:delay][,...]" — kill the node when the
// cluster-wide transport send count reaches atop, and (under -recover)
// restart it after the optional delay.
func parseCrashes(s string) ([]chaos.Crash, error) {
	var crashes []chaos.Crash
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("-crash %q: want node:atop[:delay]", entry)
		}
		n, errN := strconv.Atoi(parts[0])
		at, errA := strconv.ParseInt(parts[1], 10, 64)
		if errN != nil || errA != nil || n < 0 || at < 1 {
			return nil, fmt.Errorf("-crash %q: bad node or op count", entry)
		}
		c := chaos.Crash{Node: n, AtOp: at}
		if len(parts) == 3 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("-crash %q: bad restart delay: %w", entry, err)
			}
			c.RestartAfter = d
		}
		crashes = append(crashes, c)
	}
	return crashes, nil
}

// parseAddReplicas reads "node:delay[,...]" — promote the node to a
// consensus voter once delay has elapsed into the run.
func parseAddReplicas(s string) ([]live.ReplicaAdd, error) {
	var adds []live.ReplicaAdd
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-add-replica %q: want node:delay", entry)
		}
		n, errN := strconv.Atoi(parts[0])
		d, errD := time.ParseDuration(parts[1])
		if errN != nil || errD != nil || n < 0 {
			return nil, fmt.Errorf("-add-replica %q: bad node or delay", entry)
		}
		adds = append(adds, live.ReplicaAdd{Node: n, After: d})
	}
	return adds, nil
}

// runLive executes one workload on a fresh live cluster and verifies its
// result. With opts.chaos set, every node's transport is wrapped with
// fault injection and the summed fault counters are returned. With
// opts.recover or a crash schedule, the cluster runs under the
// supervisor: killed nodes are restarted from the last stable
// barrier-aligned checkpoint until the restart budget runs out.
func runLive(appName string, scale harness.Scale, prot core.Protocol, nodes int, trans string, opts runOpts) (*live.Cluster, *live.Stats, *chaos.Counters, error) {
	app, err := harness.NewApp(appName, scale)
	if err != nil {
		return nil, nil, nil, err
	}
	supervised := opts.recover || len(opts.crashes) > 0
	cfg := live.Config{
		Nodes:             nodes,
		Protocol:          prot,
		RPCTimeout:        opts.timeout,
		RetryBase:         opts.retryBase,
		HeartbeatInterval: opts.hbInterval,
		HeartbeatTimeout:  opts.hbTimeout,
	}
	var (
		cluster *live.Cluster
		wrapped []*chaos.Transport
		nw      *chaos.Net
	)
	if supervised {
		// Recovery needs a rebuildable transport fabric, not a fixed
		// slice: a restarted node gets a fresh incarnation via Rejoin.
		var inner transport.Network
		switch trans {
		case "inproc":
			inner = transport.NewInprocNet(nodes)
		case "tcp":
			inner, err = transport.NewTCPLoopbackNet(nodes, transport.TCPOptions{})
			if err != nil {
				return nil, nil, nil, err
			}
		default:
			return nil, nil, nil, fmt.Errorf("unknown transport %q (want inproc or tcp)", trans)
		}
		fcfg := chaos.Config{Seed: opts.seed}
		if opts.chaos != nil {
			fcfg = *opts.chaos
		}
		fcfg.Crashes = opts.crashes
		fcfg.OnCrash = func(n int, d time.Duration) { cluster.Kill(n, d) }
		nw = chaos.WrapNet(inner, fcfg)
		cfg.Net = nw
	} else {
		var trs []transport.Transport
		switch trans {
		case "inproc":
			if opts.chaos != nil {
				trs = transport.NewInprocNetwork(nodes)
			}
		case "tcp":
			trs, err = transport.NewTCPLoopback(nodes, transport.TCPOptions{})
			if err != nil {
				return nil, nil, nil, err
			}
		default:
			return nil, nil, nil, fmt.Errorf("unknown transport %q (want inproc or tcp)", trans)
		}
		if opts.chaos != nil {
			wrapped = chaos.WrapAll(trs, *opts.chaos)
			trs = chaos.Transports(wrapped)
		}
		cfg.Transports = trs
	}
	cluster, err = live.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	app.Configure(cluster)

	worker := func(w core.Worker) { app.Worker(w) }
	run := func() (*live.Stats, error) {
		if !supervised {
			return cluster.Run(worker)
		}
		ropts := live.RecoverOptions{
			MaxRestarts:     opts.maxRestarts,
			CheckpointEvery: opts.ckptEvery,
			Replicate:       true,
			Seed:            opts.seed,
			CompactEvery:    opts.compactEvery,
			Voters:          opts.voters,
			AddReplicas:     opts.addReplicas,
		}
		if !opts.recover {
			// A crash schedule without -recover demonstrates the
			// degraded path: no restarts, structured abort.
			ropts.MaxRestarts = 0
		}
		if opts.ckptDir != "" {
			stores := make([]ckpt.Store, nodes)
			for i := range stores {
				s, err := ckpt.NewDirStore(filepath.Join(opts.ckptDir, fmt.Sprintf("node%d", i)))
				if err != nil {
					return nil, err
				}
				stores[i] = s
			}
			ropts.Stores = stores
		}
		return cluster.RunSupervised(worker, ropts)
	}

	var stats *live.Stats
	if opts.deadline > 0 {
		type result struct {
			stats *live.Stats
			err   error
		}
		done := make(chan result, 1)
		go func() {
			s, e := run()
			done <- result{s, e}
		}()
		select {
		case r := <-done:
			stats, err = r.stats, r.err
		case <-time.After(opts.deadline):
			// The run is still in flight; dump what the cluster has done
			// so far and exit nonzero so scripts see the overrun.
			rep := runReport{
				App: appName, Scale: scaleString(scale), Transport: trans,
				Stats: cluster.StatsSnapshot(),
			}
			rep.Chaos = liveFaults(nw, wrapped)
			json.NewEncoder(os.Stdout).Encode(rep)
			fmt.Fprintf(os.Stderr, "dsmd: deadline %v exceeded, aborting\n", opts.deadline)
			os.Exit(2)
		}
	} else {
		stats, err = run()
	}
	faults := liveFaults(nw, wrapped)
	if err != nil {
		return nil, nil, faults, fmt.Errorf("%s/%v/%dn: %w", appName, prot, nodes, err)
	}
	if err := app.Verify(cluster); err != nil {
		return nil, nil, faults, fmt.Errorf("%s/%v/%dn failed verification: %w", appName, prot, nodes, err)
	}
	return cluster, stats, faults, nil
}

// liveFaults sums injected-fault counters from whichever wrapping was in
// play: the network wrapper (supervised runs) or the per-transport slice.
func liveFaults(nw *chaos.Net, wrapped []*chaos.Transport) *chaos.Counters {
	switch {
	case nw != nil:
		sum := nw.Counters()
		return &sum
	case wrapped != nil:
		sum := chaos.SumCounters(wrapped)
		return &sum
	}
	return nil
}

func scaleString(s harness.Scale) string {
	switch s {
	case harness.ScalePaper:
		return "paper"
	case harness.ScaleBench:
		return "bench"
	}
	return "test"
}

func printReport(appName, trans string, st *live.Stats, faults *chaos.Counters) {
	fmt.Printf("%s on %d live nodes (%s, %s): %.1f ms\n",
		appName, st.Nodes, st.Protocol, trans, float64(st.ElapsedNs)/1e6)
	fmt.Printf("  msgs %d (%.1f KB), data %.1f KB, faults %d, fetches %d, pulls %d\n",
		st.Total.MsgsSent, float64(st.Total.BytesSent)/1024,
		float64(st.Total.DataBytes)/1024,
		st.Total.PageFaults, st.Total.PageFetches, st.Total.DiffPulls)
	fmt.Printf("  intervals %d, diffs created %d / applied %d (%.1f KB), invalidations %d\n",
		st.Total.Intervals, st.Total.DiffsCreated, st.Total.DiffsApplied,
		float64(st.Total.DiffBytes)/1024, st.Total.Invalidations)
	fmt.Printf("  locks %d (wait %.1f ms), barriers %d (wait %.1f ms)\n",
		st.Total.LockAcquires, float64(st.Total.LockWaitNs)/1e6,
		st.Total.BarrierEpisodes, float64(st.Total.BarrierWaitNs)/1e6)
	fmt.Printf("  lock plane: %d local reacquires, %d home forwards, %d handoffs, %d log-segment fetches\n",
		st.Total.LockLocalAcquires, st.Total.LockForwards,
		st.Total.LockHandoffs, st.Total.LogSegFetches)
	if st.MaxMsgNode >= 0 {
		fmt.Printf("  balance: busiest node %d sent %.1f%% of all messages\n",
			st.MaxMsgNode, 100*st.MaxMsgFrac)
	}
	fmt.Printf("  retries %d, dup reqs %d, dup replies %d, heartbeats %d sent / %d recv\n",
		st.Total.RPCRetries, st.Total.DupRequests, st.Total.DupReplies,
		st.Total.HeartbeatsSent, st.Total.HeartbeatsRecv)
	if faults != nil {
		fmt.Printf("  chaos: %d faults (drop %d, dup %d, delay %d, reset %d, partition %d, crash %d)\n",
			faults.Total(), faults.Dropped, faults.Duplicated, faults.Delayed,
			faults.Resets, faults.Partitioned, faults.Crashes)
	}
	if st.Restarts > 0 || st.Total.CheckpointsTaken > 0 || st.Total.StaleFrames > 0 {
		fmt.Printf("  recovery: %d restarts (%.1f ms), %d checkpoints (%.1f KB), %d stale frames fenced\n",
			st.Restarts, float64(st.RecoveryNs)/1e6,
			st.Total.CheckpointsTaken, float64(st.Total.CheckpointBytes)/1024,
			st.Total.StaleFrames)
	}
	for _, ns := range st.PerNode {
		fmt.Printf("  node %d: sent %d msgs, faults %d, intervals %d\n",
			ns.Node, ns.MsgsSent, ns.PageFaults, ns.Intervals)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmd:", err)
	os.Exit(1)
}
