package main

import (
	"encoding/json"
	"testing"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/live/chaos"
)

// TestJSONReportSurfacesFaultCounters runs jacobi under injected frame
// drops and checks the -json report schema carries the robustness
// counters: retransmissions and heartbeats in stats.total, and the
// chaos block with the injected-fault tally.
func TestJSONReportSurfacesFaultCounters(t *testing.T) {
	scale, err := harness.ParseScale("test")
	if err != nil {
		t.Fatal(err)
	}
	opts := runOpts{
		timeout:    30 * time.Second,
		retryBase:  5 * time.Millisecond,
		hbInterval: 5 * time.Millisecond,
		chaos:      &chaos.Config{Seed: 42, DropP: 0.15},
	}
	_, stats, faults, err := runLive("jacobi", scale, core.LH, 2, "inproc", opts)
	if err != nil {
		t.Fatalf("chaotic run failed: %v", err)
	}

	rep := runReport{App: "jacobi", Scale: "test", Transport: "inproc", ChaosSeed: 42, Chaos: faults, Stats: stats}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ChaosSeed int64 `json:"chaos_seed"`
		Chaos     *struct {
			Dropped int64 `json:"dropped"`
		} `json:"chaos"`
		Stats struct {
			Total struct {
				RPCRetries     int64 `json:"rpc_retries"`
				DupRequests    int64 `json:"dup_requests"`
				HeartbeatsSent int64 `json:"heartbeats_sent"`
				HeartbeatsRecv int64 `json:"heartbeats_recv"`
			} `json:"total"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.ChaosSeed != 42 {
		t.Errorf("chaos_seed = %d, want 42", got.ChaosSeed)
	}
	if got.Chaos == nil || got.Chaos.Dropped == 0 {
		t.Errorf("chaos.dropped missing or zero in %s", raw)
	}
	if got.Stats.Total.RPCRetries == 0 {
		t.Errorf("rpc_retries = 0 after %d dropped frames", got.Chaos.Dropped)
	}
	if got.Stats.Total.HeartbeatsSent == 0 || got.Stats.Total.HeartbeatsRecv == 0 {
		t.Errorf("heartbeats sent/recv = %d/%d, want both > 0",
			got.Stats.Total.HeartbeatsSent, got.Stats.Total.HeartbeatsRecv)
	}
}

// TestFaultFreeRunReportsZeroFaultCounters pins the invariant the
// robustness counters promise: all zero on a healthy network.
func TestFaultFreeRunReportsZeroFaultCounters(t *testing.T) {
	scale, err := harness.ParseScale("test")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, faults, err := runLive("jacobi", scale, core.LH, 2, "inproc", runOpts{timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		t.Errorf("fault counters reported without chaos: %+v", faults)
	}
	if n := stats.Total.RPCRetries + stats.Total.DupRequests + stats.Total.DupReplies; n != 0 {
		t.Errorf("retry/dup counters = %d on a fault-free run, want 0", n)
	}
}

func TestParsePartition(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want chaos.Partition
		ok   bool
	}{
		{"0:3", chaos.Partition{A: 0, B: 3}, true},
		{"1:2:50ms", chaos.Partition{A: 1, B: 2, From: 50 * time.Millisecond}, true},
		{"0:1:10ms:200ms", chaos.Partition{A: 0, B: 1, From: 10 * time.Millisecond, Dur: 200 * time.Millisecond}, true},
		{"3", chaos.Partition{}, false},
		{"2:2", chaos.Partition{}, false},
		{"0:1:nope", chaos.Partition{}, false},
	} {
		got, err := parsePartition(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parsePartition(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parsePartition(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
