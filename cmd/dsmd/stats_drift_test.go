package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"lrcdsm/internal/live"
	"lrcdsm/internal/live/node"
)

// TestJSONReportCarriesEveryStatsCounter guards the -json schema
// against counter drift: every field of node.Stats must carry a unique
// json tag and surface in the report's stats.total object, so a new
// counter (PR 6's lock_forwards was the near miss) cannot silently
// vanish from observability.
func TestJSONReportCarriesEveryStatsCounter(t *testing.T) {
	var total node.Stats
	rv := reflect.ValueOf(&total).Elem()
	typ := rv.Type()
	tags := make(map[string]string, typ.NumField()) // json tag -> field name
	for i := 0; i < typ.NumField(); i++ {
		tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			t.Errorf("Stats field %s has no json tag; it would vanish from dsmd -json", typ.Field(i).Name)
			continue
		}
		if prev, dup := tags[tag]; dup {
			t.Errorf("Stats fields %s and %s share json tag %q", prev, typ.Field(i).Name, tag)
		}
		tags[tag] = typ.Field(i).Name
		rv.Field(i).SetInt(int64(i + 1))
	}

	rep := runReport{App: "probe", Scale: "test", Transport: "inproc",
		Stats: &live.Stats{PerNode: []node.Stats{total}, Total: total}}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Stats struct {
			Total map[string]any `json:"total"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < typ.NumField(); i++ {
		tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		v, ok := got.Stats.Total[tag]
		if !ok {
			t.Errorf("counter %s (json %q) missing from stats.total in dsmd -json output", typ.Field(i).Name, tag)
			continue
		}
		if f, ok := v.(float64); !ok || int64(f) != int64(i+1) {
			t.Errorf("counter %s (json %q) = %v in report, want %d", typ.Field(i).Name, tag, v, i+1)
		}
	}
}
