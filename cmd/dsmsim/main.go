// Command dsmsim runs one DSM simulation: an application on a protocol,
// network and processor count, and prints the measured statistics.
//
// Usage:
//
//	dsmsim -app water -protocol LH -procs 16 -net atm -bw 100 -scale bench
package main

import (
	"flag"
	"fmt"
	"os"

	"lrcdsm/internal/core"
	"lrcdsm/internal/harness"
	"lrcdsm/internal/network"
)

func main() {
	var (
		app      = flag.String("app", "jacobi", "workload: jacobi, tsp, water, cholesky")
		protocol = flag.String("protocol", "LH", "protocol: LH, LI, LU, EI, EU")
		procs    = flag.Int("procs", 16, "number of processors (1..64)")
		netKind  = flag.String("net", "atm", "network: atm, ethernet, ethernet+coll, ideal")
		bw       = flag.Float64("bw", 100, "network bandwidth in Mbit/s (ATM/ideal)")
		clock    = flag.Float64("mhz", core.DefaultClockMHz, "processor clock in MHz")
		pageSize = flag.Int("page", core.DefaultPageSize, "page size in bytes")
		overhead = flag.Float64("overhead", 1, "software overhead factor (0, 1, 2)")
		scale    = flag.String("scale", "bench", "problem scale: paper, bench, test")
		base     = flag.Bool("speedup", false, "also run 1 processor and report speedup")
		traceN   = flag.Int("trace", 0, "dump the last N protocol events after the run")
		perProc  = flag.Bool("perproc", false, "print the per-processor time breakdown")
		checkRun = flag.Bool("check", false, "run under the runtime invariant checker and report violations")
	)
	flag.Parse()

	prot, err := core.ParseProtocol(*protocol)
	if err != nil {
		fatal(err)
	}
	sc, err := harness.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var net network.Params
	switch *netKind {
	case "atm":
		net = network.ATMNet(*bw, *clock)
	case "ethernet":
		net = network.Ethernet10(*clock, false)
	case "ethernet+coll":
		net = network.Ethernet10(*clock, true)
	case "ideal":
		net = network.IdealNet(*bw, *clock)
	default:
		fatal(fmt.Errorf("unknown network %q", *netKind))
	}

	spec := harness.Spec{
		App:            *app,
		Scale:          sc,
		Protocol:       prot,
		Procs:          *procs,
		Net:            net,
		ClockMHz:       *clock,
		PageSize:       *pageSize,
		OverheadFactor: *overhead,
	}

	if *checkRun {
		res, violations, err := harness.CheckedRun(spec)
		if err != nil {
			fatal(err)
		}
		report(res, 0, *perProc)
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "dsmsim: %d invariant violation(s):\n", len(violations))
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, " ", v.String())
			}
			os.Exit(1)
		}
		fmt.Println("invariants        ok (clocks, write notices, diff ordering, barrier episodes, memory vs 1p reference)")
		return
	}
	if *base {
		r := harness.NewRunner()
		res, speedup, err := r.Speedup(spec)
		if err != nil {
			fatal(err)
		}
		report(res, speedup, *perProc)
		return
	}
	if *traceN > 0 {
		runTraced(spec, *traceN, *perProc)
		return
	}
	res, err := harness.Run(spec)
	if err != nil {
		fatal(err)
	}
	report(res, 0, *perProc)
}

// runTraced runs the spec with event tracing enabled and dumps the tail of
// the protocol event log after the statistics.
func runTraced(spec harness.Spec, n int, perProc bool) {
	cfg := core.DefaultConfig()
	cfg.Protocol = spec.Protocol
	cfg.Procs = spec.Procs
	cfg.Net = spec.Net
	cfg.Net.ClockMHz = spec.ClockMHz
	cfg.ClockMHz = spec.ClockMHz
	cfg.PageSize = spec.PageSize
	cfg.OverheadFactor = spec.OverheadFactor
	cfg.MaxSharedBytes = 64 << 20
	cfg.TraceCapacity = n
	app, err := harness.NewApp(spec.App, spec.Scale)
	if err != nil {
		fatal(err)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	app.Configure(sys)
	stats, err := sys.Run(func(p *core.Proc) { app.Worker(p) })
	if err != nil {
		fatal(err)
	}
	if err := app.Verify(sys); err != nil {
		fatal(err)
	}
	report(&harness.Result{Spec: spec, Stats: stats}, 0, perProc)
	fmt.Printf("\n-- last %d protocol events (%d dropped) --\n", n, sys.Trace().Dropped())
	sys.Trace().Summarize().WriteSummary(os.Stdout)
	sys.Trace().Dump(os.Stdout)
}

func report(res *harness.Result, speedup float64, perProc bool) {
	st := res.Stats
	fmt.Printf("app=%s protocol=%v procs=%d net=%v scale=%d\n",
		res.Spec.App, res.Spec.Protocol, res.Spec.Procs, res.Spec.Net.Kind, res.Spec.Scale)
	fmt.Printf("cycles            %d (%.3f s at %.0f MHz)\n",
		st.Cycles, st.Seconds(res.Spec.ClockMHz), res.Spec.ClockMHz)
	if speedup > 0 {
		fmt.Printf("speedup           %.2f\n", speedup)
	}
	fmt.Printf("messages          %d (sync %d = %.0f%%, data %d, grants w/ data %d)\n",
		st.Msgs, st.SyncMsgs, 100*st.SyncShare(), st.DataMsgs, st.SyncDataMsgs)
	fmt.Printf("data moved        %.1f KB\n", st.DataKB())
	fmt.Printf("access misses     %d (page fetches %d)\n", st.AccessMisses, st.PageFetches)
	fmt.Printf("diffs             created %d, applied %d; twins %d\n",
		st.DiffsCreated, st.DiffsApplied, st.TwinsCreated)
	fmt.Printf("locks             %d acquires (%d local), wait %d cycles\n",
		st.LockAcquires, st.LocalReacquires, st.LockWaitCycles)
	fmt.Printf("barriers          %d episodes, wait %d cycles\n",
		st.BarrierEpisodes, st.BarrierWaitCycles)
	fmt.Printf("network           %d frames, %d KB on wire, wait %d cycles, backoffs %d\n",
		st.Network.Frames, st.Network.WireBytes/1024, st.Network.WaitCycles, st.Network.Backoffs)
	fmt.Printf("cache             %d hits, %d misses\n", st.CacheHits, st.CacheMisses)
	if perProc {
		fmt.Printf("\n%-5s %-12s %-7s %-7s %-7s %-7s %-7s\n",
			"proc", "cycles", "busy%", "lock%", "barr%", "miss%", "flush%")
		for i, pp := range st.PerProc {
			pct := func(x float64) float64 { return 100 * x }
			c := float64(pp.Cycles)
			if c == 0 {
				c = 1
			}
			fmt.Printf("p%-4d %-12d %-7.1f %-7.1f %-7.1f %-7.1f %-7.1f\n",
				i, pp.Cycles, pct(pp.BusyShare()),
				pct(float64(pp.LockWait)/c), pct(float64(pp.BarrierWait)/c),
				pct(float64(pp.MissWait)/c), pct(float64(pp.FlushWait)/c))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmsim:", err)
	os.Exit(1)
}
