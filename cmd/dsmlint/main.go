// Command dsmlint runs the project's custom static analysis suite
// (mapiter, simclock, poolsafe, lockheld, vtalias, wiredrift — see
// internal/lint) over the given package patterns and exits non-zero if
// any diagnostic survives //dsmlint:ignore filtering. Malformed
// suppressions — an unknown analyzer name or a missing reason — are
// diagnostics themselves.
//
// Usage:
//
//	go run ./cmd/dsmlint [-json] ./...
//
// With -json the findings are emitted as a single JSON object on
// stdout ({"findings": [...], "count": N}) for CI tooling; the exit
// status is unchanged (0 clean, 1 findings, 2 errors).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/analysis"
	"lrcdsm/internal/lint/loader"
)

// finding is one diagnostic in -json output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type report struct {
	Findings []finding `json:"findings"`
	Count    int       `json:"count"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		os.Exit(2)
	}
	rep := report{Findings: []finding{}}
	emit := func(pkg *loader.Package, d analysis.Diagnostic) {
		pos := pkg.Fset.Position(d.Pos)
		f := finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message}
		rep.Findings = append(rep.Findings, f)
		if !*jsonOut {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	for _, pkg := range pkgs {
		for _, d := range lint.SuppressionDiagnostics(pkg) {
			emit(pkg, d)
		}
		for _, a := range lint.AnalyzersFor(pkg.PkgPath) {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsmlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				emit(pkg, d)
			}
		}
	}
	rep.Count = len(rep.Findings)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "dsmlint:", err)
			os.Exit(2)
		}
	}
	if rep.Count > 0 {
		fmt.Fprintf(os.Stderr, "dsmlint: %d finding(s)\n", rep.Count)
		os.Exit(1)
	}
}
