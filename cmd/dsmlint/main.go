// Command dsmlint runs the project's custom static analysis suite
// (mapiter, simclock, poolsafe — see internal/lint) over the given
// package patterns and exits non-zero if any diagnostic survives
// //dsmlint:ignore filtering.
//
// Usage:
//
//	go run ./cmd/dsmlint ./...
package main

import (
	"fmt"
	"os"

	"lrcdsm/internal/lint"
	"lrcdsm/internal/lint/loader"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmlint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range lint.AnalyzersFor(pkg.PkgPath) {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsmlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dsmlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
