package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"lrcdsm/internal/live"
	"lrcdsm/internal/live/node"
	"lrcdsm/internal/serve/hist"
	"lrcdsm/internal/serve/loadgen"
)

// TestJSONReportCarriesEveryStatsCounter guards dsmserve's -json schema
// against counter drift, exactly as dsmd's twin test does: every field
// of node.Stats must carry a unique json tag and surface in the
// report's stats.total object — the serve counters (serve_gets,
// serve_puts, serve_lock_waits_ns) ride the same struct, so a counter
// added without a tag or dropped from the Snapshot copy list fails
// here. The serving-side extras (serve_hist, load.latency) must also
// survive the round trip.
func TestJSONReportCarriesEveryStatsCounter(t *testing.T) {
	var total node.Stats
	rv := reflect.ValueOf(&total).Elem()
	typ := rv.Type()
	tags := make(map[string]string, typ.NumField()) // json tag -> field name
	for i := 0; i < typ.NumField(); i++ {
		tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			t.Errorf("Stats field %s has no json tag; it would vanish from dsmserve -json", typ.Field(i).Name)
			continue
		}
		if prev, dup := tags[tag]; dup {
			t.Errorf("Stats fields %s and %s share json tag %q", prev, typ.Field(i).Name, tag)
		}
		tags[tag] = typ.Field(i).Name
		rv.Field(i).SetInt(int64(i + 1))
	}

	var h hist.Hist
	h.Record(1000)
	rep := serveReport{
		Nodes: 2, Protocol: "LH", Transport: "inproc", Route: "affinity",
		Keys: 64, KeysPerPage: 8, Shards: 4, ServeWorkers: 2,
		Load: &loadgen.Result{
			Mix: loadgen.Mix{Name: "probe", ReadFrac: 0.5, Dist: "uniform"},
			Ops: 1, Latency: h.Summarize(),
		},
		ServeHist: h.Summarize(),
		Stats:     &live.Stats{PerNode: []node.Stats{total}, Total: total},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ServeHist map[string]any `json:"serve_hist"`
		Load      struct {
			Latency map[string]any `json:"latency"`
		} `json:"load"`
		Stats struct {
			Total map[string]any `json:"total"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < typ.NumField(); i++ {
		tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		v, ok := got.Stats.Total[tag]
		if !ok {
			t.Errorf("counter %s (json %q) missing from stats.total in dsmserve -json output", typ.Field(i).Name, tag)
			continue
		}
		if f, ok := v.(float64); !ok || int64(f) != int64(i+1) {
			t.Errorf("counter %s (json %q) = %v in report, want %d", typ.Field(i).Name, tag, v, i+1)
		}
	}

	for _, probe := range []struct {
		name string
		m    map[string]any
	}{
		{"serve_hist", got.ServeHist},
		{"load.latency", got.Load.Latency},
	} {
		if probe.m == nil {
			t.Errorf("%s missing from dsmserve -json output", probe.name)
			continue
		}
		for _, q := range []string{"count", "p50_ns", "p99_ns", "p999_ns"} {
			if _, ok := probe.m[q]; !ok {
				t.Errorf("%s lacks quantile %q", probe.name, q)
			}
		}
	}
}
