// Command dsmserve runs the DSM-as-a-service front end: a sharded
// get/put key-value API served by an N-node live LRC cluster, driven by
// the built-in open-loop load generator (in process or through the TCP
// frontend) and reporting throughput and latency quantiles.
//
// Usage:
//
//	dsmserve -nodes 4 -mix update-uniform -clients 32 -ops 200000 -json
//	dsmserve -nodes 2 -mix read-heavy-zipf -read-frac 0.95 -dist zipfian -rate 50000
//	dsmserve -nodes 2 -listen 127.0.0.1:7070 -clients 8 -ops 20000
//	dsmserve -nodes 2 -listen 127.0.0.1:7070 -ops 0        # serve until SIGINT
//	dsmserve -nodes 3 -durable -recover -crash 1:400:5ms -check
//
// Keys hash to DSM pages (-keys-per-page slots per page), pages group
// into -shards shards, and each shard's operations are serialized under
// one distributed lock from the cluster's decentralized lock plane, so
// a get observes the latest acknowledged put under lazy release
// consistency. With -durable, acknowledgments wait for a stable
// barrier-aligned checkpoint (group commit), so an acked write survives
// node crashes injected with -crash under -recover.
//
// With -json, one JSON object — configuration, load result with latency
// quantiles, the server-side histogram, and the cluster's protocol
// counters — is printed to stdout, one object per run, suitable for
// appending to a JSON-lines file. With -check, the run uses a
// partitioned deterministic load and every key's final value is
// compared against a 1-node reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lrcdsm/internal/core"
	"lrcdsm/internal/live"
	"lrcdsm/internal/live/chaos"
	"lrcdsm/internal/live/transport"
	"lrcdsm/internal/serve"
	"lrcdsm/internal/serve/hist"
	"lrcdsm/internal/serve/loadgen"
)

// serveReport is the -json output schema: one object per run.
type serveReport struct {
	Nodes        int             `json:"nodes"`
	Protocol     string          `json:"protocol"`
	Transport    string          `json:"transport"`
	Route        string          `json:"route"`
	Durable      bool            `json:"durable,omitempty"`
	Keys         uint64          `json:"keys"`
	KeysPerPage  int             `json:"keys_per_page"`
	Shards       int             `json:"shards"`
	ServeWorkers int             `json:"serve_workers"`
	Listen       string          `json:"listen,omitempty"`
	Load         *loadgen.Result `json:"load,omitempty"`
	ServeHist    *hist.Summary   `json:"serve_hist"`
	ChaosSeed    int64           `json:"chaos_seed,omitempty"`
	Chaos        *chaos.Counters `json:"chaos,omitempty"`
	Stats        *live.Stats     `json:"stats"`
}

func main() {
	var (
		nodes    = flag.Int("nodes", 2, "cluster size (one goroutine-backed node per processor)")
		protocol = flag.String("protocol", "LH", "live protocol: LH (hybrid update) or LI (invalidate)")
		trans    = flag.String("transport", "inproc", "DSM transport: inproc, tcp (loopback sockets)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-wait RPC timeout")

		keys        = flag.Uint64("keys", 1<<15, "key-space size (power of two)")
		keysPerPage = flag.Int("keys-per-page", 0, "key slots per DSM page (0: page size / 64)")
		shards      = flag.Int("shards", 0, "shard count, one distributed lock each (0: 64, capped at page count)")
		serveWk     = flag.Int("serve-workers", 4, "executor goroutines per serving node")
		route       = flag.String("route", "affinity", "request routing: affinity (shard's home node) or any (round-robin)")
		batch       = flag.Int("batch", 64, "max operations grouped under one lock acquire")

		mixName  = flag.String("mix", "update-uniform", "mix label for the report")
		readFrac = flag.Float64("read-frac", 0.5, "fraction of operations that are gets")
		dist     = flag.String("dist", "uniform", "key distribution: uniform, zipfian")
		theta    = flag.Float64("theta", 0.99, "zipfian skew (with -dist zipfian)")
		clients  = flag.Int("clients", 16, "logical load clients, each with one outstanding op")
		loadWk   = flag.Int("load-workers", 0, "goroutines multiplexing the clients (0: one per client, capped at 64)")
		rate     = flag.Float64("rate", 0, "offered rate in ops/sec across all clients (0: closed loop)")
		ops      = flag.Int64("ops", 100000, "total operations (0 with -listen: serve until SIGINT)")
		seed     = flag.Int64("seed", 1, "load generator seed")
		verify   = flag.Bool("verify", false, "partition the key space and check read-your-writes per client")

		listen = flag.String("listen", "", "serve the TCP frontend on this address and drive the load through it")

		durable     = flag.Bool("durable", false, "group-commit acks: acknowledge only after a stable checkpoint")
		recoverRun  = flag.Bool("recover", false, "survive node crashes: restart killed nodes from the last checkpoint")
		maxRestarts = flag.Int("max-restarts", 3, "restart budget (with -recover)")
		ckptEvery   = flag.Int64("ckpt-every", 1, "checkpoint at every Nth barrier episode (supervised runs)")
		crashSpec   = flag.String("crash", "", "kill schedule: node:atop[:delay][,...] — kill node at the victim's own send count, restart after delay")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for the fault-injection schedule")

		jsonOut  = flag.Bool("json", false, "print the run report as one JSON object")
		checkRun = flag.Bool("check", false, "compare every key's final value against a 1-node reference run")
	)
	flag.Parse()

	prot, err := core.ParseProtocol(*protocol)
	if err != nil {
		fatal(err)
	}
	var crashes []chaos.Crash
	if *crashSpec != "" {
		if crashes, err = parseCrashes(*crashSpec); err != nil {
			fatal(err)
		}
	}

	scfg := serve.Config{
		Keys: *keys, KeysPerPage: *keysPerPage, Shards: *shards,
		Workers: *serveWk, Batch: *batch, Route: *route,
		Durable: *durable, CkptEvery: *ckptEvery,
	}
	lcfg := loadgen.Config{
		Clients: *clients, Workers: *loadWk, Keys: *keys, Ops: *ops,
		Rate: *rate, Seed: *seed,
		Mix: loadgen.Mix{Name: *mixName, ReadFrac: *readFrac, Dist: *dist, Theta: *theta},
	}
	if *verify || *checkRun {
		// Both the live read-your-writes check and the cross-cluster
		// reference comparison need a deterministic final image.
		lcfg.Partition = true
		lcfg.Verify = true
	}

	ro := runOpts{
		prot: prot, trans: *trans, timeout: *timeout, listen: *listen,
		supervised: *durable || *recoverRun || len(crashes) > 0,
		maxRestarts: *maxRestarts, ckptEvery: *ckptEvery,
		crashes: crashes, seed: *chaosSeed, recoverRun: *recoverRun,
	}
	got, err := runServe(*nodes, scfg, lcfg, ro)
	if err != nil {
		fatal(err)
	}

	if *checkRun && *nodes > 1 {
		refCfg := scfg
		refCfg.Durable = false // the reference defines the values, not the ack discipline
		ref, err := runServe(1, refCfg, lcfg, runOpts{prot: prot, trans: "inproc", timeout: *timeout})
		if err != nil {
			fatal(fmt.Errorf("reference run: %w", err))
		}
		bad := 0
		for k := uint64(0); k < *keys; k++ {
			a := got.store.KeyAddr(k)
			if g, r := got.cl.PeekU64(a), ref.cl.PeekU64(a); g != r {
				if bad < 5 {
					fmt.Fprintf(os.Stderr, "key %d: got %#x, 1-node reference %#x\n", k, g, r)
				}
				bad++
			}
		}
		if bad > 0 {
			fatal(fmt.Errorf("%d key(s) mismatch the 1-node reference", bad))
		}
		fmt.Fprintf(os.Stderr, "check: all %d keys match 1-node reference\n", *keys)
	}

	rep := serveReport{
		Nodes: *nodes, Protocol: prot.String(), Transport: *trans,
		Route: got.route, Durable: *durable,
		Keys: *keys, KeysPerPage: got.kpp, Shards: got.shards,
		ServeWorkers: *serveWk, Listen: *listen,
		Load: got.res, ServeHist: got.hist, Stats: got.stats,
	}
	if got.faults != nil {
		rep.ChaosSeed = *chaosSeed
		rep.Chaos = got.faults
	}
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(&rep)
}

// runOpts carries the cluster-shape knobs from flags into runServe.
type runOpts struct {
	prot    core.Protocol
	trans   string
	timeout time.Duration
	listen  string

	supervised  bool
	recoverRun  bool
	maxRestarts int
	ckptEvery   int64
	crashes     []chaos.Crash
	seed        int64
}

// serveResult is one finished serving run.
type serveResult struct {
	cl     *live.Cluster
	store  *serve.Store
	res    *loadgen.Result
	hist   *hist.Summary
	stats  *live.Stats
	faults *chaos.Counters
	route  string
	kpp    int
	shards int
}

// runServe brings up the serving cluster, drives the load (in-proc, or
// through the TCP frontend with listen set — ops 0 serves external
// clients until SIGINT), shuts down and returns everything measured.
func runServe(nodes int, scfg serve.Config, lcfg loadgen.Config, ro runOpts) (*serveResult, error) {
	cfg := live.Config{Nodes: nodes, Protocol: ro.prot, RPCTimeout: ro.timeout}
	var (
		cl  *live.Cluster
		nw  *chaos.Net
		err error
	)
	if ro.supervised {
		var inner transport.Network
		switch ro.trans {
		case "inproc":
			inner = transport.NewInprocNet(nodes)
		case "tcp":
			if inner, err = transport.NewTCPLoopbackNet(nodes, transport.TCPOptions{}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown transport %q (want inproc or tcp)", ro.trans)
		}
		fcfg := chaos.Config{Seed: ro.seed, Crashes: ro.crashes}
		fcfg.OnCrash = func(n int, d time.Duration) { cl.Kill(n, d) }
		nw = chaos.WrapNet(inner, fcfg)
		cfg.Net = nw
	} else {
		switch ro.trans {
		case "inproc":
		case "tcp":
			net, terr := transport.NewTCPLoopbackNet(nodes, transport.TCPOptions{})
			if terr != nil {
				return nil, terr
			}
			cfg.Transports = net.Transports()
		default:
			return nil, fmt.Errorf("unknown transport %q (want inproc or tcp)", ro.trans)
		}
	}
	cl, err = live.New(cfg)
	if err != nil {
		return nil, err
	}
	st, err := serve.NewStore(cl, scfg)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(st)

	type out struct {
		stats *live.Stats
		err   error
	}
	done := make(chan out, 1)
	go func() {
		var stats *live.Stats
		var rerr error
		if ro.supervised {
			restarts := ro.maxRestarts
			if !ro.recoverRun {
				restarts = 0
			}
			stats, rerr = cl.RunSupervised(srv.NodeWorker, live.RecoverOptions{
				MaxRestarts: restarts, CheckpointEvery: ro.ckptEvery,
				Replicate: true, Seed: ro.seed,
			})
		} else {
			stats, rerr = cl.Run(srv.NodeWorker)
		}
		done <- out{stats, rerr}
	}()

	var fe *serve.Frontend
	mk := func(int) (loadgen.Driver, error) { return srv, nil }
	if ro.listen != "" {
		if fe, err = serve.ServeTCP(srv, ro.listen); err != nil {
			srv.Shutdown()
			<-done
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "dsmserve: frontend listening on %s\n", fe.Addr())
		var dialed []*serve.Client
		mk = func(int) (loadgen.Driver, error) {
			c, derr := serve.Dial(fe.Addr())
			if derr == nil {
				dialed = append(dialed, c)
			}
			return c, derr
		}
		defer func() {
			for _, c := range dialed {
				c.Close()
			}
		}()
	}

	var res *loadgen.Result
	var lerr error
	if lcfg.Ops == 0 && fe != nil {
		// Pure service mode: external clients drive the frontend.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		signal.Stop(sig)
	} else {
		res, lerr = loadgen.Run(lcfg, mk)
	}
	if fe != nil {
		fe.Close()
	}
	srv.Shutdown()
	o := <-done
	if lerr != nil {
		return nil, fmt.Errorf("load: %w", lerr)
	}
	if o.err != nil {
		return nil, fmt.Errorf("cluster: %w", o.err)
	}
	if res != nil && res.Violations != 0 {
		return nil, fmt.Errorf("%d read-your-writes violations", res.Violations)
	}
	rc := st.Resolved()
	sr := &serveResult{
		cl: cl, store: st, res: res, hist: srv.HistSummary(), stats: o.stats,
		route: rc.Route, kpp: rc.KeysPerPage, shards: rc.Shards,
	}
	if nw != nil {
		sum := nw.Counters()
		sr.faults = &sum
	}
	return sr, nil
}

// parseCrashes reads "node:atop[:delay][,...]" — kill the node when its
// own transport send count reaches atop, restart after the delay.
func parseCrashes(s string) ([]chaos.Crash, error) {
	var crashes []chaos.Crash
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("-crash %q: want node:atop[:delay]", entry)
		}
		n, errN := strconv.Atoi(parts[0])
		at, errA := strconv.ParseInt(parts[1], 10, 64)
		if errN != nil || errA != nil || n < 0 || at < 1 {
			return nil, fmt.Errorf("-crash %q: bad node or op count", entry)
		}
		c := chaos.Crash{Node: n, AtOp: at, Local: true}
		if len(parts) == 3 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("-crash %q: bad restart delay: %w", entry, err)
			}
			c.RestartAfter = d
		}
		crashes = append(crashes, c)
	}
	return crashes, nil
}

func printReport(rep *serveReport) {
	fmt.Printf("serve on %d live nodes (%s, %s, route %s): %d shards, %d keys (%d/page), %d executors/node\n",
		rep.Nodes, rep.Protocol, rep.Transport, rep.Route,
		rep.Shards, rep.Keys, rep.KeysPerPage, rep.ServeWorkers)
	if r := rep.Load; r != nil {
		fmt.Printf("  mix %s: %d ops (%d get / %d put), %.0f ops/s",
			r.Mix.Name, r.Ops, r.Gets, r.Puts, r.OpsPerSec)
		if r.TargetRate > 0 {
			fmt.Printf(" (target %.0f)", r.TargetRate)
		}
		fmt.Println()
		if l := r.Latency; l != nil && l.Count > 0 {
			fmt.Printf("  client latency: p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
				ns(l.P50Ns), ns(l.P90Ns), ns(l.P99Ns), ns(l.P999Ns), ns(l.MaxNs))
		}
		if r.VerifiedKeys > 0 {
			fmt.Printf("  verify: read-your-writes held, %d keys swept\n", r.VerifiedKeys)
		}
	}
	if h := rep.ServeHist; h != nil && h.Count > 0 {
		fmt.Printf("  server queue+exec: p50 %s  p99 %s  p99.9 %s\n", ns(h.P50Ns), ns(h.P99Ns), ns(h.P999Ns))
	}
	st := rep.Stats
	fmt.Printf("  cluster: %d gets, %d puts, lock wait %.1f ms, msgs %d, diffs %d applied\n",
		st.Total.ServeGets, st.Total.ServePuts,
		float64(st.Total.ServeLockWaitNs)/1e6,
		st.Total.MsgsSent, st.Total.DiffsApplied)
	if rep.Chaos != nil {
		fmt.Printf("  chaos: %d faults (%d crashes), %d restarts, %d checkpoints\n",
			rep.Chaos.Total(), rep.Chaos.Crashes, st.Restarts, st.Total.CheckpointsTaken)
	}
}

// ns renders a nanosecond count as a human duration.
func ns(v int64) string { return time.Duration(v).String() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmserve:", err)
	os.Exit(1)
}
