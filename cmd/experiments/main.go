// Command experiments regenerates every table and figure of the paper's
// evaluation section (Figures 6–18, Tables 2–5, and the Section 6.2
// message statistics).
//
// Usage:
//
//	experiments                 # all experiments at bench scale
//	experiments -scale paper    # the paper's problem sizes (slow)
//	experiments -only fig6,t2   # a subset
//	experiments -parallel 4     # 4 sweep cells at a time (0 = all CPUs)
//	experiments -parallel 1     # strictly serial
//
// Each simulation is deterministic and independent, so sweep cells run
// concurrently on a worker pool; output is identical for any -parallel
// value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lrcdsm/internal/harness"
)

func main() {
	var (
		scaleName = flag.String("scale", "bench", "problem scale: paper, bench, test")
		only      = flag.String("only", "", "comma-separated subset: fig6,fig7-9,fig10-12,fig13-15,fig16-18,t2,t3,t4,t5,stats,taskqueue")
		parallel  = flag.Int("parallel", 0, "worker pool size for sweep cells (0 = GOMAXPROCS, 1 = serial)")
		checkRun  = flag.Bool("check", false, "run every sweep cell under the runtime invariant checker")
	)
	flag.Parse()
	scale, err := harness.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	r := harness.NewRunnerN(*parallel)
	if *checkRun {
		r.EnableCheck()
	}

	type step struct {
		key string
		run func() error
	}
	steps := []step{
		{"fig6", func() error {
			t, err := harness.Figure6(r, scale)
			return show(t, err)
		}},
		{"fig7-9", func() error { return showSet(harness.Figures7to9(r, scale)) }},
		{"fig10-12", func() error { return showSet(harness.Figures10to12(r, scale)) }},
		{"fig13-15", func() error { return showSet(harness.Figures13to15(r, scale)) }},
		{"fig16-18", func() error { return showSet(harness.Figures16to18(r, scale)) }},
		{"t2", func() error {
			t, err := harness.Table2(r, scale)
			return show(t, err)
		}},
		{"t3", func() error {
			t, err := harness.Table3(r, scale)
			return show(t, err)
		}},
		{"t4", func() error {
			t, err := harness.Table4(r, scale)
			return show(t, err)
		}},
		{"t5", func() error {
			t, err := harness.Table5(r, scale)
			return show(t, err)
		}},
		{"stats", func() error {
			t, err := harness.SyncStats(r, scale)
			return show(t, err)
		}},
		{"taskqueue", func() error {
			if err := showSet(harness.TaskQueueFigures(r, scale)); err != nil {
				return err
			}
			t, err := harness.TaskQueueGrain(r, scale)
			return show(t, err)
		}},
	}
	for _, s := range steps {
		if !sel(s.key) {
			continue
		}
		start := time.Now()
		if err := s.run(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", s.key, time.Since(start).Round(time.Millisecond))
	}
}

func show(t *harness.Table, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(t.String())
	return nil
}

func showSet(fs *harness.FigureSet, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(fs.Speedup.String())
	fmt.Println(fs.Msgs.String())
	fmt.Println(fs.DataKB.String())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
