module lrcdsm

go 1.22
